"""Self-contained single-file HTML run report.

:func:`render_run_html` turns one :class:`~repro.sim.simulator.RunResult`
(or an A/B pair) into a complete HTML document: a scalar-metrics table,
one inline SVG sparkline per windowed metric (two overlaid polylines in
A/B mode) and a per-set occupancy heatmap rendered as an SVG rect grid.

Everything is inlined — one ``<style>`` block, SVG markup generated
here, colors computed in Python — so the file opens identically from
disk, a CI artifact store, or an air-gapped machine: **zero network
references** (no scripts, no stylesheets, no fonts, no images).

The output is deterministic: nothing wall-clock- or host-dependent is
rendered and every float goes through one fixed formatter, so the same
inputs always produce byte-identical HTML (asserted in CI).
"""

from __future__ import annotations

from html import escape
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.diff import _fmt, _mean, _scalar_metrics, diff_results

if TYPE_CHECKING:  # hint-only: sim imports obs, not vice versa
    from repro.sim.simulator import RunResult

#: Series colors: A is the STEM blue, B the comparison orange.
_COLOR_A = "#2166ac"
_COLOR_B = "#e08214"

#: Timeline roles: giver = blue, taker = orange, both-in-bucket = purple.
_COLOR_BOTH = "#762a83"

#: Timeline caps mirror the heatmap's; the coupling Gantt strip shows
#: at most this many episodes (earliest first) before noting the rest.
_MAX_GANTT_ROWS = 48

#: Heatmap caps keep the SVG small for big geometries/long runs: sets
#: are averaged into at most this many rows, windows into columns.
_MAX_HEAT_ROWS = 64
_MAX_HEAT_COLS = 128

_STYLE = """
body { font-family: monospace; margin: 2em auto; max-width: 72em;
       color: #1a1a1a; background: #fcfcfc; }
h1 { font-size: 1.3em; border-bottom: 2px solid #2166ac; }
h2 { font-size: 1.05em; margin-top: 1.8em; }
table { border-collapse: collapse; }
th, td { padding: 0.2em 0.9em; text-align: right;
         border-bottom: 1px solid #ddd; }
th { border-bottom: 2px solid #888; }
td.name, th.name { text-align: left; }
.spark { display: flex; align-items: center; gap: 1em;
         margin: 0.25em 0; }
.spark .label { width: 18em; text-align: right; }
.legend { margin: 0.5em 0; }
.swatch { display: inline-block; width: 0.9em; height: 0.9em;
          vertical-align: middle; margin-right: 0.3em; }
.note { color: #666; font-style: italic; }
svg { background: #fff; border: 1px solid #ddd; }
"""


def _bucket(values: List[float], buckets: int) -> List[float]:
    """Average ``values`` down to at most ``buckets`` entries."""
    count = len(values)
    if count <= buckets:
        return list(values)
    result = []
    for index in range(buckets):
        start = index * count // buckets
        stop = max(start + 1, (index + 1) * count // buckets)
        chunk = values[start:stop]
        result.append(sum(chunk) / len(chunk))
    return result


def _heat_color(fraction: float) -> str:
    """White -> STEM blue ramp; input clamped to [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    # Endpoints: #ffffff (empty) to #08306b (full).
    red = round(255 + (8 - 255) * fraction)
    green = round(255 + (48 - 255) * fraction)
    blue = round(255 + (107 - 255) * fraction)
    return f"#{red:02x}{green:02x}{blue:02x}"


def _svg_sparkline(
    series_a: List[float],
    series_b: Optional[List[float]] = None,
    width: int = 420,
    height: int = 44,
) -> str:
    """Inline SVG with one polyline per series, shared y-scale."""
    pool = list(series_a) + (list(series_b) if series_b else [])
    low = min(pool) if pool else 0.0
    high = max(pool) if pool else 1.0
    span = high - low or 1.0
    pad = 3

    def points(values: List[float]) -> str:
        if len(values) == 1:
            values = values * 2
        last = len(values) - 1
        return " ".join(
            f"{pad + index * (width - 2 * pad) / last:.2f},"
            f"{height - pad - (value - low) / span * (height - 2 * pad):.2f}"
            for index, value in enumerate(values)
        )

    lines = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    lines.append(
        f'<polyline fill="none" stroke="{_COLOR_A}" stroke-width="1.5" '
        f'points="{points(series_a)}"/>'
    )
    if series_b:
        lines.append(
            f'<polyline fill="none" stroke="{_COLOR_B}" stroke-width="1.5" '
            f'points="{points(series_b)}"/>'
        )
    lines.append("</svg>")
    return "".join(lines)


def _svg_heatmap(
    rows: List[List[int]], max_value: float, cell: int = 7
) -> str:
    """Per-set occupancy grid: x = windows, y = sets (bucketed)."""
    if not rows:
        return ""
    num_sets = len(rows[0])
    # Transpose to per-set series, bucket both axes.
    per_set = [
        _bucket([float(row[index]) for row in rows], _MAX_HEAT_COLS)
        for index in range(num_sets)
    ]
    if num_sets > _MAX_HEAT_ROWS:
        grouped = []
        for index in range(_MAX_HEAT_ROWS):
            start = index * num_sets // _MAX_HEAT_ROWS
            stop = max(start + 1, (index + 1) * num_sets // _MAX_HEAT_ROWS)
            chunk = per_set[start:stop]
            grouped.append([
                sum(series[col] for series in chunk) / len(chunk)
                for col in range(len(chunk[0]))
            ])
        per_set = grouped
    height = len(per_set) * cell
    width = len(per_set[0]) * cell
    scale = max_value or 1.0
    rects = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    for row_index, series in enumerate(per_set):
        for col_index, value in enumerate(series):
            rects.append(
                f'<rect x="{col_index * cell}" y="{row_index * cell}" '
                f'width="{cell}" height="{cell}" '
                f'fill="{_heat_color(value / scale)}"/>'
            )
    rects.append("</svg>")
    return "".join(rects)


def _timeline_geometry(ledger) -> Tuple[int, int]:
    """(num_sets, clock_span) the timeline must cover, or (0, 0)."""
    num_sets = 0
    if ledger.counters:
        num_sets = max(
            (len(values) for values in ledger.counters.values()), default=0
        )
    highest = -1
    span = ledger.final_accesses
    for episode in ledger.coupling_episodes:
        highest = max(highest, episode.taker, episode.giver)
        span = max(span, episode.start + 1)
        if episode.end is not None:
            span = max(span, episode.end)
    for swap in ledger.swap_episodes:
        highest = max(highest, swap.set_index)
        span = max(span, swap.clock + 1)
    num_sets = max(num_sets, highest + 1)
    return num_sets, span


def _svg_timeline(ledger, num_sets: int, span: int, cell: int = 7) -> str:
    """Sets x clock-bucket grid of coupling roles, with swap ticks.

    Rows are sets (bucketed to at most ``_MAX_HEAT_ROWS``), columns are
    equal slices of the event clock (at most ``_MAX_HEAT_COLS``).  A
    bucket is orange while the set takes capacity, blue while it gives
    it, purple when bucketing folds both roles together, white when
    uncoupled.  Policy swaps draw as dark ticks at the top of their
    set's row.
    """
    rows = min(num_sets, _MAX_HEAT_ROWS)
    cols = min(max(span, 1), _MAX_HEAT_COLS)

    def row_of(set_index: int) -> int:
        return min(set_index * rows // num_sets, rows - 1)

    def col_of(clock: int) -> int:
        clock = min(max(clock, 0), span - 1) if span else 0
        return min(clock * cols // max(span, 1), cols - 1)

    taker_cells = [[False] * cols for _ in range(rows)]
    giver_cells = [[False] * cols for _ in range(rows)]
    for episode in ledger.coupling_episodes:
        end = episode.end if episode.end is not None else span
        first = col_of(episode.start)
        last = col_of(max(end - 1, episode.start))
        for col in range(first, last + 1):
            taker_cells[row_of(episode.taker)][col] = True
            giver_cells[row_of(episode.giver)][col] = True
    width = cols * cell
    height = rows * cell
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    for row in range(rows):
        for col in range(cols):
            taking = taker_cells[row][col]
            giving = giver_cells[row][col]
            if not taking and not giving:
                continue
            color = (
                _COLOR_BOTH if taking and giving
                else _COLOR_B if taking else _COLOR_A
            )
            parts.append(
                f'<rect x="{col * cell}" y="{row * cell}" '
                f'width="{cell}" height="{cell}" fill="{color}"/>'
            )
    for swap in ledger.swap_episodes:
        parts.append(
            f'<rect x="{col_of(swap.clock) * cell}" '
            f'y="{row_of(swap.set_index) * cell}" '
            f'width="{cell}" height="2" fill="#1a1a1a"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _svg_gantt(ledger, span: int, row_height: int = 6,
               width: int = 896) -> str:
    """One horizontal bar per coupling episode, earliest first."""
    episodes = ledger.coupling_episodes[:_MAX_GANTT_ROWS]
    if not episodes:
        return ""
    height = len(episodes) * row_height
    scale = width / max(span, 1)
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">',
        f'<rect width="{width}" height="{height}" fill="#ffffff"/>',
    ]
    for index, episode in enumerate(episodes):
        end = episode.end if episode.end is not None else span
        x = episode.start * scale
        bar = max((end - episode.start) * scale, 1.0)
        parts.append(
            f'<rect x="{x:.2f}" y="{index * row_height}" '
            f'width="{bar:.2f}" height="{row_height - 1}" '
            f'fill="{_COLOR_A}"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _timeline_section(tag: str, result: RunResult,
                      paired: bool) -> List[str]:
    """The spatiotemporal timeline blocks for one ledgered run."""
    ledger = result.ledger
    num_sets, span = _timeline_geometry(ledger)
    heading = "Spatiotemporal timeline"
    if paired:
        heading += f" — {tag}"
    parts = [f"<h2>{escape(heading)}</h2>"]
    if num_sets == 0 or span == 0:
        parts.append(
            '<p class="note">ledger sealed with no attributable '
            "activity</p>"
        )
        return parts
    parts.append(
        '<p class="legend">'
        f'<span class="swatch" style="background:{_COLOR_B}"></span>'
        "taker &nbsp; "
        f'<span class="swatch" style="background:{_COLOR_A}"></span>'
        "giver &nbsp; "
        f'<span class="swatch" style="background:{_COLOR_BOTH}"></span>'
        "both (bucketed) &nbsp; dark tick = policy swap</p>"
    )
    parts.append(
        '<p class="note">rows = sets (top = set 0), columns = event '
        f"clock; axes bucketed to {_MAX_HEAT_ROWS}&times;"
        f"{_MAX_HEAT_COLS}</p>"
    )
    parts.append(_svg_timeline(ledger, num_sets, span))
    gantt = _svg_gantt(ledger, span)
    if gantt:
        shown = min(len(ledger.coupling_episodes), _MAX_GANTT_ROWS)
        note = f"coupling episodes ({shown}"
        total = len(ledger.coupling_episodes) + ledger.episodes_dropped
        if total > shown:
            note += f" of {total}"
        note += ", earliest first; bar spans the episode's clock window)"
        parts.append(f'<p class="note">{escape(note)}</p>')
        parts.append(gantt)
    return parts


def _occupancy_ceiling(result: RunResult) -> float:
    """Heatmap scale: the run's peak per-set occupancy."""
    rows = (
        result.series.set_series.get("occupancy", [])
        if result.series is not None else []
    )
    return float(max((max(row) for row in rows if row), default=1))


def _scalar_table(
    a: RunResult, b: Optional[RunResult]
) -> str:
    metrics_a = _scalar_metrics(a)
    lines = ["<table>"]
    if b is None:
        lines.append(
            '<tr><th class="name">metric</th><th>value</th></tr>'
        )
        for name in sorted(metrics_a):
            lines.append(
                f'<tr><td class="name">{escape(name)}</td>'
                f"<td>{_fmt(metrics_a[name])}</td></tr>"
            )
    else:
        metrics_b = _scalar_metrics(b)
        lines.append(
            '<tr><th class="name">metric</th><th>A</th><th>B</th>'
            "<th>delta</th></tr>"
        )
        for name in sorted(set(metrics_a) | set(metrics_b)):
            value_a = metrics_a.get(name, 0.0)
            value_b = metrics_b.get(name, 0.0)
            lines.append(
                f'<tr><td class="name">{escape(name)}</td>'
                f"<td>{_fmt(value_a)}</td><td>{_fmt(value_b)}</td>"
                f"<td>{_fmt(value_b - value_a)}</td></tr>"
            )
    lines.append("</table>")
    return "\n".join(lines)


def _series_pairs(
    a: RunResult, b: Optional[RunResult]
) -> Tuple[Dict[str, Tuple[List[float], Optional[List[float]]]], Optional[str]]:
    """Window-aligned {metric: (A series, B series or None)}, or a note."""
    if a.series is None:
        return {}, (
            "no windowed series — re-run with metrics_window / --window"
        )
    if b is None or b.series is None:
        return (
            {name: (values, None) for name, values in a.series.series.items()},
            None,
        )
    if a.series.window_length != b.series.window_length:
        return {}, (
            f"window lengths differ (A={a.series.window_length}, "
            f"B={b.series.window_length}); series omitted"
        )
    shared = min(a.series.num_windows, b.series.num_windows)
    return (
        {
            name: (
                list(a.series.series[name][:shared]),
                list(b.series.series[name][:shared]),
            )
            for name in sorted(set(a.series.series) & set(b.series.series))
        },
        None,
    )


def render_run_html(
    a: RunResult,
    b: Optional[RunResult] = None,
    title: Optional[str] = None,
) -> str:
    """Render one run (or an A/B pair) as a self-contained HTML page."""
    label_a = f"{a.scheme} on {a.trace_name}"
    if title is None:
        title = (
            f"run report: {label_a}" if b is None
            else f"run diff: {label_a} vs {b.scheme} on {b.trace_name}"
        )
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
    ]
    if b is not None:
        parts.append(
            '<p class="legend">'
            f'<span class="swatch" style="background:{_COLOR_A}"></span>'
            f"A = {escape(label_a)} &nbsp; "
            f'<span class="swatch" style="background:{_COLOR_B}"></span>'
            f"B = {escape(b.scheme)} on {escape(b.trace_name)}</p>"
        )
    parts.append("<h2>Scalar metrics</h2>")
    parts.append(_scalar_table(a, b))

    parts.append("<h2>Windowed series</h2>")
    pairs, note = _series_pairs(a, b)
    if note is not None:
        parts.append(f'<p class="note">{escape(note)}</p>')
    elif not pairs:
        parts.append('<p class="note">no shared series</p>')
    else:
        window = a.series.window_length if a.series is not None else 0
        parts.append(
            f'<p class="note">windows of {window} accesses; sparkline '
            "scaled per metric; trailing mean shown</p>"
        )
        for name in sorted(pairs):
            series_a, series_b = pairs[name]
            mean_text = f"mean A {_fmt(_mean(series_a))}"
            if series_b is not None:
                mean_text += f" / B {_fmt(_mean(series_b))}"
            parts.append(
                '<div class="spark">'
                f'<span class="label">{escape(name)}</span>'
                f"{_svg_sparkline(series_a, series_b)}"
                f"<span>{mean_text}</span></div>"
            )

    runs = [("A", a)] + ([("B", b)] if b is not None else [])
    for tag, result in runs:
        rows = (
            result.series.set_series.get("occupancy", [])
            if result.series is not None else []
        )
        if not rows:
            continue
        heading = "Per-set occupancy"
        if b is not None:
            heading += f" — {tag}"
        parts.append(f"<h2>{escape(heading)}</h2>")
        parts.append(
            '<p class="note">rows = sets (top = set 0), columns = '
            "windows, darker = fuller; axes bucketed to "
            f"{_MAX_HEAT_ROWS}&times;{_MAX_HEAT_COLS}</p>"
        )
        parts.append(_svg_heatmap(rows, _occupancy_ceiling(result)))

    # Ledgered runs grow the spatiotemporal timeline view; ledger-less
    # pages keep their exact pre-ledger bytes.
    for tag, result in runs:
        if result.ledger is not None:
            parts.extend(
                _timeline_section(tag, result, paired=b is not None)
            )

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


#: Extra rules for campaign pages only (run pages stay byte-stable).
_BANNER_STYLE = """
.banner { border: 2px solid #b2182b; background: #fddbc7;
          padding: 0.6em 1em; margin: 1em 0; }
.banner h2 { margin: 0 0 0.4em 0; color: #b2182b; }
"""


def _metric_table_html(
    rows: Dict[str, Dict[str, float]], columns: List[str]
) -> str:
    """A {workload: {scheme: value}} grid as an HTML table.

    Missing cells (quarantined runs) render as ``-``, mirroring
    :func:`~repro.sim.results.format_table`.
    """
    lines = ["<table>", '<tr><th class="name">workload</th>']
    lines.extend(f"<th>{escape(column)}</th>" for column in columns)
    lines.append("</tr>")
    for name, values in rows.items():
        cells = [f'<tr><td class="name">{escape(str(name))}</td>']
        for column in columns:
            value = values.get(column)
            cells.append(
                "<td>-</td>" if value is None else f"<td>{_fmt(value)}</td>"
            )
        cells.append("</tr>")
        lines.append("".join(cells))
    lines.append("</table>")
    return "\n".join(lines)


def render_campaign_html(
    name: str,
    total_cells: int,
    mpki: Dict[str, Dict[str, float]],
    schemes: List[str],
    normalized: Optional[Dict[str, Dict[str, float]]] = None,
    quarantined: Optional[List[Dict[str, object]]] = None,
) -> str:
    """Self-contained campaign report page (DESIGN.md §12).

    Same contract as :func:`render_run_html` — one inline ``<style>``
    block, zero network references, and byte-determinism (no wall-clock
    or host state is rendered, so an interrupted-and-resumed campaign
    emits exactly the bytes an uninterrupted one would).  When cells
    were quarantined, a graceful-degradation banner lists each one with
    its structured failure.
    """
    quarantined = quarantined or []
    completed = total_cells - len(quarantined)
    title = f"campaign report: {name}"
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}{_BANNER_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="note">{total_cells} cells, {completed} completed, '
        f"{len(quarantined)} quarantined</p>",
    ]
    if quarantined:
        parts.append('<div class="banner">')
        parts.append(
            f"<h2>degraded: {len(quarantined)} cell(s) quarantined</h2>"
        )
        parts.append(
            '<p class="note">each cell exhausted its retry budget; the '
            "rest of the campaign completed normally (see "
            "quarantine/ for the structured reports)</p>"
        )
        parts.append("<ul>")
        for entry in quarantined:
            parts.append(
                f"<li><code>{escape(str(entry.get('id', '?')))}</code> "
                f"&mdash; {escape(str(entry.get('error_type', '?')))}: "
                f"{escape(str(entry.get('message', '')))} "
                f"({escape(str(entry.get('attempts', '?')))} "
                "attempt(s))</li>"
            )
        parts.append("</ul></div>")
    parts.append("<h2>MPKI</h2>")
    parts.append(_metric_table_html(mpki, schemes))
    if normalized is not None:
        parts.append("<h2>MPKI normalized to LRU</h2>")
        parts.append(
            '<p class="note">per-workload normalisation; Geomean row '
            "summarises across workloads</p>"
        )
        parts.append(_metric_table_html(normalized, schemes))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def diff_to_html(a: RunResult, b: RunResult) -> str:
    """A/B page plus the plain-text diff in a ``<pre>`` appendix."""
    page = render_run_html(a, b)
    appendix = (
        "<h2>Text diff</h2><pre>"
        + escape(diff_results(a, b).render())
        + "</pre>\n</body></html>\n"
    )
    return page.replace("</body></html>\n", appendix)


#: How many per-set attribution rows the explain page tabulates.
_MAX_EXPLAIN_SETS = 32


def _component_bar(value: int, scale: int, color: str,
                   width: int = 320, height: int = 14) -> str:
    """One signed horizontal bar, zero-anchored at the middle."""
    half = width // 2
    magnitude = abs(value) / scale * half if scale else 0.0
    x = half - magnitude if value < 0 else half
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<line x1="{half}" y1="0" x2="{half}" y2="{height}" '
        'stroke="#888" stroke-width="1"/>'
        f'<rect x="{x:.2f}" y="2" width="{magnitude:.2f}" '
        f'height="{height - 4}" fill="{color}"/></svg>'
    )


def explain_to_html(attribution) -> str:
    """Self-contained page for one :func:`~repro.obs.explain.attribute`.

    Same contract as :func:`render_run_html`: inline styles only, zero
    network references, byte-deterministic for identical inputs.
    """
    title = (
        f"explain: {attribution.label_a} vs {attribution.label_b}"
    )
    components = [
        ("spatial", attribution.spatial,
         "cooperative hits in borrowed space", _COLOR_A),
        ("temporal", attribution.temporal,
         "hits under a swapped insertion policy", _COLOR_B),
        ("residual", attribution.residual,
         "replacement-order and interaction effects", "#888888"),
    ]
    scale = max(
        [abs(value) for _, value, _, _ in components]
        + [abs(attribution.total_delta_hits), 1]
    )
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="note">total hit delta (B - A): '
        f"{attribution.total_delta_hits:+d} hits over "
        f"{attribution.accesses_b} measured accesses &mdash; observed "
        f"class {escape(attribution.classification.label)}</p>",
        "<h2>Decomposition</h2>",
        "<table>",
        '<tr><th class="name">component</th><th>hits</th>'
        '<th class="name">meaning</th><th class="name"></th></tr>',
    ]
    for name, value, meaning, color in components:
        parts.append(
            f'<tr><td class="name">{escape(name)}</td>'
            f"<td>{value:+d}</td>"
            f'<td class="name">{escape(meaning)}</td>'
            f"<td>{_component_bar(value, scale, color)}</td></tr>"
        )
    parts.append("</table>")
    if attribution.sets:
        ranked = sorted(
            attribution.sets,
            key=lambda row: (-abs(row.delta_hits), row.set_index),
        )[:_MAX_EXPLAIN_SETS]
        parts.append(
            f"<h2>Top {len(ranked)} diverging sets</h2>"
        )
        parts.append("<table>")
        parts.append(
            '<tr><th class="name">set</th><th>delta hits</th>'
            "<th>spatial</th><th>temporal</th><th>residual</th></tr>"
        )
        for row in ranked:
            parts.append(
                f'<tr><td class="name">{row.set_index}</td>'
                f"<td>{row.delta_hits:+d}</td><td>{row.spatial:+d}</td>"
                f"<td>{row.temporal:+d}</td><td>{row.residual:+d}</td>"
                "</tr>"
            )
        parts.append("</table>")
    summaries = [
        ("A", attribution.label_a, attribution.ledger_summary_a),
        ("B", attribution.label_b, attribution.ledger_summary_b),
    ]
    if any(summary is not None for _, _, summary in summaries):
        parts.append("<h2>Ledger roll-ups</h2>")
        parts.append("<table>")
        parts.append(
            '<tr><th class="name">run</th><th class="name">label</th>'
            "<th>episodes</th><th>swaps</th><th>lent</th>"
            "<th>borrowed</th><th>spills</th><th>coop hits</th></tr>"
        )
        for tag, label, summary in summaries:
            if summary is None:
                parts.append(
                    f'<tr><td class="name">{tag}</td>'
                    f'<td class="name">{escape(label)}</td>'
                    '<td colspan="6">no ledger</td></tr>'
                )
                continue
            parts.append(
                f'<tr><td class="name">{tag}</td>'
                f'<td class="name">{escape(label)}</td>'
                f"<td>{summary['coupling_episodes']}</td>"
                f"<td>{summary['policy_swaps']}</td>"
                f"<td>{summary['lent']}</td>"
                f"<td>{summary['borrowed']}</td>"
                f"<td>{summary['spill_events']}</td>"
                f"<td>{summary['coop_hit_events']}</td></tr>"
            )
        parts.append("</table>")
    for note in attribution.notes:
        parts.append(f'<p class="note">note: {escape(note)}</p>')
    parts.append("<h2>Text report</h2>")
    parts.append("<pre>" + escape(attribution.render()) + "</pre>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
