"""SQLite artifact index: one queryable catalog over every artifact.

Eight PRs of observability left the repo rich in artifacts — save_run
JSON files, campaign directories (journal + summary + quarantine),
``BENCH_HISTORY.jsonl`` — but each one is a file you must know the path
of, and nothing correlates them across runs.  :class:`ArtifactIndex`
fixes that: a stdlib-``sqlite3`` catalog (one file per workspace,
default :data:`DEFAULT_INDEX_PATH`) that ``repro index ingest``
populates idempotently and ``repro index query`` / ``repro serve``
read.

Ingestion contract
------------------
* **Idempotent.**  Runs are keyed by their result content digest (the
  same :func:`~repro.sim.campaign.result_digest` the campaign journal
  records), bench samples by ``(recorded_at, scheme)``, campaigns by
  spec digest.  Re-ingesting the same artifacts changes zero rows; the
  :class:`IngestReport` says exactly what was added, updated or left
  unchanged.
* **Torn-tail tolerant.**  Campaign journals are replayed through
  :func:`~repro.sim.campaign.replay_journal` and the bench ledger
  through :func:`~repro.obs.benchhistory.load_history`, both of which
  tolerate a torn final line (the ``strict=False`` recovery idiom) —
  a crashed writer never blocks ingestion.
* **Defensive.**  A path that is not a recognised artifact is recorded
  in ``IngestReport.skipped`` with the reason, never raised.

Query surface
-------------
:meth:`ArtifactIndex.runs` (filter by scheme / benchmark / ingestion
time), :meth:`ArtifactIndex.trajectory` (one (scheme, benchmark)
pair's metric history in ingestion order), and
:meth:`ArtifactIndex.regressions` (bench-sample trajectories folded
back into ledger entries and judged by
:func:`~repro.obs.benchhistory.detect_regressions`).  Every query
returns plain sorted dicts so the CLI and the HTTP server emit
deterministic JSON.

The module deliberately avoids importing :mod:`repro.sim` at the top
level (sim imports obs, not vice versa); the sim helpers it reuses are
imported lazily inside the ingestion methods.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.benchhistory import (
    DEFAULT_REFERENCE_WINDOW,
    DEFAULT_REGRESSION_RATIO,
    detect_regressions,
    load_history,
)

#: Default index location: one file per workspace, beside
#: ``.repro-run-cache``.
DEFAULT_INDEX_PATH = ".repro-index.sqlite"

#: Schema version recorded in the ``meta`` table; mismatching indexes
#: are rebuilt from scratch (the index is derived data).
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    hash TEXT PRIMARY KEY,
    manifest_hash TEXT,
    scheme TEXT NOT NULL,
    benchmark TEXT NOT NULL,
    mpki REAL NOT NULL,
    amat REAL NOT NULL,
    cpi REAL NOT NULL,
    miss_rate REAL NOT NULL,
    measured_accesses INTEGER NOT NULL,
    seed INTEGER,
    num_windows INTEGER NOT NULL,
    has_ledger INTEGER NOT NULL,
    source TEXT NOT NULL,
    ingested_at TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_scheme_benchmark
    ON runs (scheme, benchmark);
CREATE TABLE IF NOT EXISTS campaigns (
    spec_digest TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    total_cells INTEGER,
    completed INTEGER NOT NULL,
    quarantined INTEGER NOT NULL,
    truncated_journal INTEGER NOT NULL,
    source TEXT NOT NULL,
    ingested_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_cells (
    spec_digest TEXT NOT NULL,
    cell INTEGER NOT NULL,
    cell_id TEXT NOT NULL,
    status TEXT NOT NULL,
    digest TEXT,
    error_type TEXT,
    PRIMARY KEY (spec_digest, cell)
);
CREATE TABLE IF NOT EXISTS bench_samples (
    recorded_at TEXT NOT NULL,
    scheme TEXT NOT NULL,
    accesses_per_sec REAL NOT NULL,
    manifest_hash TEXT,
    package_version TEXT,
    PRIMARY KEY (recorded_at, scheme)
);
"""


@dataclass
class IngestReport:
    """What one :meth:`ArtifactIndex.ingest` call did, per table."""

    runs_added: int = 0
    runs_unchanged: int = 0
    campaigns_added: int = 0
    campaigns_updated: int = 0
    campaigns_unchanged: int = 0
    cells_added: int = 0
    cells_updated: int = 0
    cells_unchanged: int = 0
    samples_added: int = 0
    samples_unchanged: int = 0
    skipped: List[str] = field(default_factory=list)

    @property
    def changed(self) -> int:
        """Rows added or updated — zero when ingestion was a no-op."""
        return (
            self.runs_added + self.campaigns_added + self.campaigns_updated
            + self.cells_added + self.cells_updated + self.samples_added
        )

    def merge(self, other: "IngestReport") -> None:
        """Fold another report (one artifact's counts) into this one."""
        self.runs_added += other.runs_added
        self.runs_unchanged += other.runs_unchanged
        self.campaigns_added += other.campaigns_added
        self.campaigns_updated += other.campaigns_updated
        self.campaigns_unchanged += other.campaigns_unchanged
        self.cells_added += other.cells_added
        self.cells_updated += other.cells_updated
        self.cells_unchanged += other.cells_unchanged
        self.samples_added += other.samples_added
        self.samples_unchanged += other.samples_unchanged
        self.skipped.extend(other.skipped)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "runs": {
                "added": self.runs_added, "unchanged": self.runs_unchanged
            },
            "campaigns": {
                "added": self.campaigns_added,
                "updated": self.campaigns_updated,
                "unchanged": self.campaigns_unchanged,
            },
            "cells": {
                "added": self.cells_added,
                "updated": self.cells_updated,
                "unchanged": self.cells_unchanged,
            },
            "bench_samples": {
                "added": self.samples_added,
                "unchanged": self.samples_unchanged,
            },
            "changed": self.changed,
            "skipped": list(self.skipped),
        }

    def render(self) -> str:
        """One-line-per-table human summary for the CLI."""
        lines = [
            f"runs: {self.runs_added} added, "
            f"{self.runs_unchanged} unchanged",
            f"campaigns: {self.campaigns_added} added, "
            f"{self.campaigns_updated} updated, "
            f"{self.campaigns_unchanged} unchanged "
            f"({self.cells_added + self.cells_updated} cell row(s) "
            f"written)",
            f"bench samples: {self.samples_added} added, "
            f"{self.samples_unchanged} unchanged",
        ]
        for reason in self.skipped:
            lines.append(f"skipped: {reason}")
        return "\n".join(lines) + "\n"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class ArtifactIndex:
    """The workspace's SQLite artifact catalog.

    ``path`` may be ``":memory:"`` for an ephemeral index (the default
    mode of ``repro serve``).  The connection allows cross-thread use
    and every public method holds an internal lock, so one index can
    back a :class:`~repro.obs.server` ``ThreadingHTTPServer``.
    """

    def __init__(
        self, path: Union[str, Path] = DEFAULT_INDEX_PATH
    ) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            self._connection.executescript(_SCHEMA)
            self._connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            self._connection.commit()

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "ArtifactIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, *paths: Union[str, Path]) -> IngestReport:
        """Idempotently ingest every artifact reachable from ``paths``.

        Each path may be a save_run JSON file, a campaign directory
        (holding ``campaign.jsonl``), a bench-history JSONL ledger, or
        a plain directory — which is scanned one level deep for run
        files and ledgers (telemetry status files are recognised and
        left alone).  Unrecognised paths land in ``report.skipped``.
        """
        report = IngestReport()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                if (path / "campaign.jsonl").is_file():
                    report.merge(self._ingest_campaign_dir(path))
                else:
                    report.merge(self._ingest_plain_dir(path))
            elif path.is_file():
                report.merge(self._ingest_file(path, explicit=True))
            else:
                report.skipped.append(f"{path}: no such file or directory")
        return report

    def _ingest_file(self, path: Path, explicit: bool) -> IngestReport:
        """One file: a run JSON or a bench-history ledger.

        ``explicit`` paths that match neither shape are reported in
        ``skipped``; scanned directory children fail silently (a run
        dir legitimately holds ``status.json``, telemetry files, ...).
        """
        report = IngestReport()
        if path.suffix == ".jsonl":
            if self._try_ingest_history(path, report):
                return report
            if explicit:
                report.skipped.append(
                    f"{path}: not a bench-history ledger"
                )
            return report
        if self._try_ingest_run_file(path, report):
            return report
        if explicit:
            report.skipped.append(
                f"{path}: not a saved run file (see 'repro run "
                "--save-run')"
            )
        return report

    def _ingest_plain_dir(self, path: Path) -> IngestReport:
        """Scan a non-campaign directory one level deep."""
        report = IngestReport()
        for child in sorted(path.glob("*.json")):
            report.merge(self._ingest_file(child, explicit=False))
        for child in sorted(path.glob("*.jsonl")):
            report.merge(self._ingest_file(child, explicit=False))
        return report

    def _try_ingest_run_file(
        self, path: Path, report: IngestReport
    ) -> bool:
        from repro.common.errors import ReproError
        from repro.sim.cache import load_run

        try:
            result = load_run(path)
        except ReproError:
            return False
        self._ingest_result(result, source=str(path), report=report)
        return True

    def _ingest_result(
        self, result: Any, source: str, report: IngestReport
    ) -> None:
        from repro.sim.campaign import result_digest

        digest = result_digest(result)
        manifest = result.manifest
        with self._lock:
            row = self._connection.execute(
                "SELECT hash FROM runs WHERE hash = ?", (digest,)
            ).fetchone()
            if row is not None:
                report.runs_unchanged += 1
                return
            self._connection.execute(
                "INSERT INTO runs (hash, manifest_hash, scheme, "
                "benchmark, mpki, amat, cpi, miss_rate, "
                "measured_accesses, seed, num_windows, has_ledger, "
                "source, ingested_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    digest,
                    manifest.content_hash if manifest is not None else None,
                    result.scheme,
                    result.trace_name,
                    result.mpki,
                    result.amat,
                    result.cpi,
                    result.miss_rate,
                    result.measured_accesses,
                    manifest.seed if manifest is not None else None,
                    (
                        result.series.num_windows
                        if result.series is not None else 0
                    ),
                    int(result.ledger is not None),
                    source,
                    _utc_now(),
                ),
            )
            self._connection.commit()
        report.runs_added += 1

    def _try_ingest_history(
        self, path: Path, report: IngestReport
    ) -> bool:
        from repro.common.errors import ReproError

        try:
            history = load_history(path)
        except ReproError:
            return False
        entries = [
            entry for entry in history
            if isinstance(entry.get("schemes"), dict)
            and entry.get("recorded_at")
        ]
        if not entries:
            return False
        with self._lock:
            for entry in entries:
                recorded_at = str(entry["recorded_at"])
                version = entry.get("package_version")
                for scheme, values in sorted(entry["schemes"].items()):
                    rate = values.get("accesses_per_sec")
                    if not isinstance(rate, (int, float)):
                        continue
                    existing = self._connection.execute(
                        "SELECT scheme FROM bench_samples "
                        "WHERE recorded_at = ? AND scheme = ?",
                        (recorded_at, scheme),
                    ).fetchone()
                    if existing is not None:
                        report.samples_unchanged += 1
                        continue
                    self._connection.execute(
                        "INSERT INTO bench_samples (recorded_at, scheme, "
                        "accesses_per_sec, manifest_hash, "
                        "package_version) VALUES (?, ?, ?, ?, ?)",
                        (
                            recorded_at,
                            scheme,
                            float(rate),
                            values.get("manifest_hash"),
                            version,
                        ),
                    )
                    report.samples_added += 1
            self._connection.commit()
        return True

    def _ingest_campaign_dir(self, path: Path) -> IngestReport:
        """Journal + summary + quarantine + cached cell results.

        The journal replay uses the campaign layer's own torn-tail
        tolerance; completed cells whose results are still present in
        the campaign's ``runcache/`` (digest-verified, exactly like
        resume) are ingested into the runs table so per-cell metrics
        become queryable.
        """
        from repro.common.errors import ReproError
        from repro.sim.cache import RunCache
        from repro.sim.campaign import replay_journal, result_digest

        report = IngestReport()
        try:
            state = replay_journal(path / "campaign.jsonl")
        except ReproError as exc:
            report.skipped.append(f"{path}: corrupt journal: {exc}")
            return report
        summary: Dict[str, Any] = {}
        summary_path = path / "summary.json"
        if summary_path.is_file():
            try:
                loaded = json.loads(
                    summary_path.read_text(encoding="utf-8")
                )
                if isinstance(loaded, dict):
                    summary = loaded
            except ValueError:
                pass
        digest = summary.get("spec_digest") or state.spec_digest
        if not isinstance(digest, str) or not digest:
            report.skipped.append(
                f"{path}: journal has no campaign_start record and no "
                "summary.json — cannot key the campaign"
            )
            return report
        name = str(
            summary.get("name") or state.name or path.name
        )
        total = summary.get("total_cells", state.total_cells)
        quarantined = summary.get("quarantined")
        quarantined_count = (
            len(quarantined) if isinstance(quarantined, list)
            else len(state.failed)
        )
        completed = summary.get("completed", len(state.completed))
        self._upsert_campaign(
            report,
            digest=digest,
            name=name,
            total_cells=total if isinstance(total, int) else None,
            completed=int(completed),
            quarantined=quarantined_count,
            truncated=int(state.truncated),
            source=str(path),
        )
        for index in sorted(state.completed):
            record = state.completed[index]
            self._upsert_cell(
                report, digest, index,
                cell_id=str(record.get("id", "")),
                status="done",
                cell_digest=record.get("digest"),
                error_type=None,
            )
        for index in sorted(state.failed):
            record = state.failed[index]
            failure = record.get("failure", {})
            self._upsert_cell(
                report, digest, index,
                cell_id=str(record.get("id", "")),
                status="failed",
                cell_digest=None,
                error_type=str(failure.get("error_type", "?")),
            )
        run_cache_root = path / "runcache"
        if run_cache_root.is_dir():
            cache = RunCache(run_cache_root)
            for index in sorted(state.completed):
                record = state.completed[index]
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                result = cache.get(key)
                if result is None:
                    continue
                if result_digest(result) != record.get("digest"):
                    continue
                self._ingest_result(
                    result,
                    source=str(cache.path_for(key)),
                    report=report,
                )
        return report

    def _upsert_campaign(
        self,
        report: IngestReport,
        digest: str,
        name: str,
        total_cells: Optional[int],
        completed: int,
        quarantined: int,
        truncated: int,
        source: str,
    ) -> None:
        values = (name, total_cells, completed, quarantined, truncated,
                  source)
        with self._lock:
            row = self._connection.execute(
                "SELECT name, total_cells, completed, quarantined, "
                "truncated_journal, source FROM campaigns "
                "WHERE spec_digest = ?",
                (digest,),
            ).fetchone()
            if row is not None and tuple(row) == values:
                report.campaigns_unchanged += 1
                return
            if row is None:
                self._connection.execute(
                    "INSERT INTO campaigns (spec_digest, name, "
                    "total_cells, completed, quarantined, "
                    "truncated_journal, source, ingested_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (digest,) + values + (_utc_now(),),
                )
                report.campaigns_added += 1
            else:
                # A resumed campaign legitimately advances in place.
                self._connection.execute(
                    "UPDATE campaigns SET name = ?, total_cells = ?, "
                    "completed = ?, quarantined = ?, "
                    "truncated_journal = ?, source = ?, ingested_at = ? "
                    "WHERE spec_digest = ?",
                    values + (_utc_now(), digest),
                )
                report.campaigns_updated += 1
            self._connection.commit()

    def _upsert_cell(
        self,
        report: IngestReport,
        spec_digest: str,
        cell: int,
        cell_id: str,
        status: str,
        cell_digest: Optional[str],
        error_type: Optional[str],
    ) -> None:
        values = (cell_id, status, cell_digest, error_type)
        with self._lock:
            row = self._connection.execute(
                "SELECT cell_id, status, digest, error_type "
                "FROM campaign_cells "
                "WHERE spec_digest = ? AND cell = ?",
                (spec_digest, cell),
            ).fetchone()
            if row is not None and tuple(row) == values:
                report.cells_unchanged += 1
                return
            if row is None:
                self._connection.execute(
                    "INSERT INTO campaign_cells (spec_digest, cell, "
                    "cell_id, status, digest, error_type) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (spec_digest, cell) + values,
                )
                report.cells_added += 1
            else:
                # A quarantined cell can become done after a resume.
                self._connection.execute(
                    "UPDATE campaign_cells SET cell_id = ?, status = ?, "
                    "digest = ?, error_type = ? "
                    "WHERE spec_digest = ? AND cell = ?",
                    values + (spec_digest, cell),
                )
                report.cells_updated += 1
            self._connection.commit()

    # ------------------------------------------------------------------
    # Queries (all results are plain sorted dicts)
    # ------------------------------------------------------------------

    _RUN_COLUMNS = (
        "hash", "manifest_hash", "scheme", "benchmark", "mpki", "amat",
        "cpi", "miss_rate", "measured_accesses", "seed", "num_windows",
        "has_ledger", "source", "ingested_at",
    )

    @staticmethod
    def _run_row(row: sqlite3.Row) -> Dict[str, Any]:
        record = {name: row[name] for name in ArtifactIndex._RUN_COLUMNS}
        record["has_ledger"] = bool(record["has_ledger"])
        return record

    def runs(
        self,
        scheme: Optional[str] = None,
        benchmark: Optional[str] = None,
        since: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Indexed runs, sorted by (scheme, benchmark, hash).

        ``scheme`` matches case-insensitively (display names like
        ``STEM`` and factory keys like ``stem`` both work); ``since``
        is an ISO-8601 lower bound on ingestion time.
        """
        clauses, params = [], []
        if scheme is not None:
            clauses.append("lower(scheme) = lower(?)")
            params.append(scheme)
        if benchmark is not None:
            clauses.append("benchmark = ?")
            params.append(benchmark)
        if since is not None:
            clauses.append("ingested_at >= ?")
            params.append(since)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM runs" + where
                + " ORDER BY scheme, benchmark, hash",
                params,
            ).fetchall()
        return [self._run_row(row) for row in rows]

    def run(self, digest: str) -> Optional[Dict[str, Any]]:
        """One run by content hash; a unique prefix also resolves."""
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM runs WHERE hash = ?", (digest,)
            ).fetchone()
            if row is not None:
                return self._run_row(row)
            rows = self._connection.execute(
                "SELECT * FROM runs WHERE hash LIKE ? "
                "ORDER BY hash LIMIT 2",
                (digest + "%",),
            ).fetchall()
        if len(rows) == 1:
            return self._run_row(rows[0])
        return None

    def trajectory(
        self, scheme: str, benchmark: str
    ) -> List[Dict[str, Any]]:
        """One (scheme, benchmark) pair's runs in ingestion order.

        The cross-run view behind metric-drift questions: each element
        carries the scalar metrics plus the provenance hashes, oldest
        ingestion first.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM runs WHERE lower(scheme) = lower(?) "
                "AND benchmark = ? ORDER BY rowid",
                (scheme, benchmark),
            ).fetchall()
        return [self._run_row(row) for row in rows]

    def campaigns(self) -> List[Dict[str, Any]]:
        """Indexed campaigns, sorted by (name, spec_digest)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM campaigns ORDER BY name, spec_digest"
            ).fetchall()
        return [
            {
                "spec_digest": row["spec_digest"],
                "name": row["name"],
                "total_cells": row["total_cells"],
                "completed": row["completed"],
                "quarantined": row["quarantined"],
                "truncated_journal": bool(row["truncated_journal"]),
                "source": row["source"],
                "ingested_at": row["ingested_at"],
            }
            for row in rows
        ]

    def bench_history(self) -> List[Dict[str, Any]]:
        """Bench samples folded back into ledger-shaped entries.

        Reconstructs the ``BENCH_HISTORY.jsonl`` entry shape (grouped
        by ``recorded_at``, oldest first) so the existing
        :func:`~repro.obs.benchhistory.detect_regressions` applies
        unchanged.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT recorded_at, scheme, accesses_per_sec, "
                "manifest_hash FROM bench_samples "
                "ORDER BY recorded_at, scheme"
            ).fetchall()
        entries: List[Dict[str, Any]] = []
        for row in rows:
            if not entries or entries[-1]["recorded_at"] != row["recorded_at"]:
                entries.append(
                    {"recorded_at": row["recorded_at"], "schemes": {}}
                )
            entries[-1]["schemes"][row["scheme"]] = {
                "accesses_per_sec": row["accesses_per_sec"],
                "manifest_hash": row["manifest_hash"],
            }
        return entries

    def regressions(
        self,
        window: int = DEFAULT_REFERENCE_WINDOW,
        ratio: float = DEFAULT_REGRESSION_RATIO,
    ) -> List[Dict[str, Any]]:
        """Per-scheme trajectory verdicts over the indexed samples."""
        return [
            verdict.as_dict()
            for verdict in detect_regressions(
                self.bench_history(), ratio=ratio, reference_window=window
            )
        ]

    def stats(self) -> Dict[str, int]:
        """Row counts per table (the observatory front page)."""
        with self._lock:
            return {
                table: self._connection.execute(
                    f"SELECT COUNT(*) FROM {table}"  # fixed identifiers
                ).fetchone()[0]
                for table in (
                    "runs", "campaigns", "campaign_cells", "bench_samples"
                )
            }
