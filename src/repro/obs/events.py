"""Typed trace events emitted by the simulated cache controllers.

Every interesting micro-architectural action — a block leaving a set, a
victim spilling into a coupled partner, a pair forming or dissolving, a
per-set policy swap, a shadow-set hit — has a small frozen dataclass
here.  Events are *data*: caches construct them only when a tracer is
enabled, sinks serialise them (``as_dict``), and the inspection helpers
rebuild them from JSONL logs (``event_from_dict``).

All events share three fields:

``access``
    The owning cache's ``stats.accesses`` value at emission time — the
    simulation's clock.  ``reset_stats()`` (the warm-up boundary) also
    resets this clock; it is kept for backward compatibility with
    existing logs and tooling.
``global_access``
    The monotonic access clock: the cache's lifetime access count,
    which ``reset_stats()`` does *not* rewind.  Time-axis analyses
    (coupling lifetimes, swap cadence) key on this clock, so they stay
    correct even when a run traces with warm-up enabled.  Logs written
    before this field existed rebuild with ``global_access=0``;
    :func:`repro.obs.inspect.event_clock` falls back to ``access`` for
    them.
``set_index``
    The *home* set of the action: the evicting set, the spilling taker,
    the swapping set, the shadow-probing set.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Type

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class for every trace event."""

    kind: ClassVar[str] = "event"

    access: int
    set_index: int
    # Monotonic lifetime clock; 0 marks a record predating the field
    # (reset_stats() never rewinds it, so real emissions are >= 1).
    global_access: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view including the ``kind`` tag."""
        record: Dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            record[spec.name] = getattr(self, spec.name)
        return record


@dataclass(frozen=True, slots=True)
class Eviction(TraceEvent):
    """A block was removed from ``set_index`` (mirrors ``stats.evictions``).

    ``cooperative`` marks a giver set evicting a block it cached on
    behalf of its coupled taker.  Spilled victims also produce an
    :class:`Eviction` in the taker (the block left that set) followed by
    a :class:`Spill` recording where it went.
    """

    kind: ClassVar[str] = "eviction"

    tag: int = 0
    dirty: bool = False
    cooperative: bool = False


@dataclass(frozen=True, slots=True)
class Spill(TraceEvent):
    """A taker (``set_index``) displaced a victim into ``giver``."""

    kind: ClassVar[str] = "spill"

    giver: int = -1
    tag: int = 0
    dirty: bool = False


@dataclass(frozen=True, slots=True)
class SpillReject(TraceEvent):
    """Receiving control refused a spill from ``set_index`` to ``giver``."""

    kind: ClassVar[str] = "spill_reject"

    giver: int = -1
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Coupling(TraceEvent):
    """Taker ``set_index`` coupled with ``giver``."""

    kind: ClassVar[str] = "coupling"

    giver: int = -1


@dataclass(frozen=True, slots=True)
class CoopHit(TraceEvent):
    """Taker ``set_index`` hit in space borrowed from ``giver``.

    Mirrors ``stats.cooperative_hits``: the access missed the taker's
    own ways but found the block among the cooperative blocks its
    coupled giver caches on its behalf.  Emitted from the miss path
    only, so it is as rare as the cooperative hits themselves.
    """

    kind: ClassVar[str] = "coop_hit"

    giver: int = -1


@dataclass(frozen=True, slots=True)
class Decoupling(TraceEvent):
    """The (``set_index`` = taker, ``giver``) pair dissolved.

    ``reason`` records *why*: ``giver_drained`` (the giver evicted its
    last cooperative block while still acting as a giver),
    ``role_change`` (the pair dissolved because the giver's demand
    recovered), or ``safe_mode`` (an invariant sweep dissolved the pair
    while repairing the set).  Logs written before the field existed
    rebuild with the empty string.
    """

    kind: ClassVar[str] = "decoupling"

    giver: int = -1
    reason: str = ""


@dataclass(frozen=True, slots=True)
class PolicySwap(TraceEvent):
    """SC_T saturated: ``set_index`` swapped its policy to ``mode``.

    ``hits`` snapshots ``stats.hits`` at the swap, pairing with
    ``access`` so the ledger can compute hit rates for the windows
    before and after each swap without retaining per-access events.
    Old logs rebuild with ``hits=0``.
    """

    kind: ClassVar[str] = "policy_swap"

    mode: str = "LRU"
    hits: int = 0


@dataclass(frozen=True, slots=True)
class ShadowHit(TraceEvent):
    """A miss in ``set_index`` hit the set's shadow tags (SCDM pulse)."""

    kind: ClassVar[str] = "shadow_hit"

    signature: int = 0


@dataclass(frozen=True, slots=True)
class FaultInjected(TraceEvent):
    """A fault campaign corrupted simulated state.

    ``target`` names the structure (``sc_s``, ``sc_t``, ``shadow``,
    ``association``, ``heap``, ``trace``); ``detail`` is a compact,
    deterministic description of exactly what was flipped.  ``set_index``
    is the affected set, or -1 for structures without a home set.
    """

    kind: ClassVar[str] = "fault_injected"

    target: str = ""
    detail: str = ""


@dataclass(frozen=True, slots=True)
class SafeModeEntry(TraceEvent):
    """Safe mode repaired ``set_index`` and pinned it to plain LRU."""

    kind: ClassVar[str] = "safe_mode"

    reason: str = ""


#: Every concrete event type, keyed by its ``kind`` tag.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        Eviction,
        Spill,
        SpillReject,
        Coupling,
        CoopHit,
        Decoupling,
        PolicySwap,
        ShadowHit,
        FaultInjected,
        SafeModeEntry,
    )
}


def event_from_dict(record: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from an ``as_dict`` / JSONL record."""
    try:
        cls = EVENT_TYPES[record["kind"]]
    except KeyError as exc:
        raise ConfigError(
            f"unknown event kind {record.get('kind')!r}; "
            f"known: {', '.join(sorted(EVENT_TYPES))}"
        ) from exc
    payload = {
        spec.name: record[spec.name]
        for spec in fields(cls)
        if spec.name in record
    }
    return cls(**payload)
