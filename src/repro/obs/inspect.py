"""Aggregate an event log into the paper's dynamics views.

Where :class:`~repro.common.stats.CacheStats` answers *how much*, these
helpers answer *where* and *when*: per-set event histograms, coupling
lifetimes (how long taker/giver pairs survive), spill fan-out (which
givers absorb whose victims) and policy-swap cadence (how often each
set's LRU/BIP duel flips).  They accept any iterable of
:class:`~repro.obs.events.TraceEvent` — a ring buffer's ``events`` or a
JSONL log read by :func:`~repro.obs.sinks.load_events`.

Time-axis aggregations (lifetimes, cadences) key on
:func:`event_clock`: the monotonic ``global_access`` stamp when the
log carries one, falling back to ``access`` for logs written before
that field existed.  The fallback inherits the old footgun — the
``access`` clock rewinds at the ``reset_stats()`` warm-up boundary —
but current emitters always stamp ``global_access``, so warm-up no
longer corrupts lifetimes or cadences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.obs.events import (
    Coupling,
    Decoupling,
    FaultInjected,
    PolicySwap,
    SafeModeEntry,
    Spill,
    TraceEvent,
)


def event_clock(event: TraceEvent) -> int:
    """The event's position on the monotonic access clock.

    Emissions always happen with ``stats.accesses >= 1``, so a zero
    ``global_access`` reliably marks a record rebuilt from a log that
    predates the field; those fall back to the (rewindable) ``access``
    clock.
    """
    return event.global_access or event.access


@dataclass(frozen=True)
class CouplingSpan:
    """One taker/giver pairing from formation to dissolution."""

    taker: int
    giver: int
    start_access: int
    end_access: Optional[int]  # None: still coupled at end of log

    @property
    def lifetime(self) -> Optional[int]:
        """Accesses the pair survived, or None while still open."""
        if self.end_access is None:
            return None
        return self.end_access - self.start_access


def event_counts(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """{kind: count} over the whole log."""
    return dict(Counter(event.kind for event in events))


def per_set_counts(
    events: Iterable[TraceEvent], kind: Optional[str] = None
) -> Dict[int, int]:
    """{set_index: count}, optionally restricted to one event kind."""
    return dict(Counter(
        event.set_index
        for event in events
        if kind is None or event.kind == kind
    ))


def coupling_spans(events: Iterable[TraceEvent]) -> List[CouplingSpan]:
    """Pair each Coupling with its Decoupling into lifetime spans."""
    open_spans: Dict[tuple, int] = {}
    spans: List[CouplingSpan] = []
    for event in events:
        if isinstance(event, Coupling):
            open_spans[(event.set_index, event.giver)] = event_clock(event)
        elif isinstance(event, Decoupling):
            start = open_spans.pop((event.set_index, event.giver), None)
            if start is not None:
                spans.append(CouplingSpan(
                    taker=event.set_index,
                    giver=event.giver,
                    start_access=start,
                    end_access=event_clock(event),
                ))
    for (taker, giver), start in open_spans.items():
        spans.append(CouplingSpan(
            taker=taker, giver=giver, start_access=start, end_access=None
        ))
    spans.sort(key=lambda span: span.start_access)
    return spans


def coupling_lifetimes(events: Iterable[TraceEvent]) -> List[int]:
    """Lifetimes (in accesses) of every *closed* coupling."""
    return [
        span.lifetime
        for span in coupling_spans(events)
        if span.lifetime is not None
    ]


def spill_fanout(events: Iterable[TraceEvent]) -> Dict[int, Dict[int, int]]:
    """{taker: {giver: spill count}} — who displaced victims where."""
    fanout: Dict[int, Dict[int, int]] = {}
    for event in events:
        if isinstance(event, Spill):
            row = fanout.setdefault(event.set_index, {})
            row[event.giver] = row.get(event.giver, 0) + 1
    return fanout


def swap_cadence(events: Iterable[TraceEvent]) -> Dict[int, List[int]]:
    """{set_index: gaps between consecutive policy swaps, in accesses}."""
    last_swap: Dict[int, int] = {}
    cadence: Dict[int, List[int]] = {}
    for event in events:
        if not isinstance(event, PolicySwap):
            continue
        clock = event_clock(event)
        previous = last_swap.get(event.set_index)
        if previous is not None:
            cadence.setdefault(event.set_index, []).append(clock - previous)
        else:
            cadence.setdefault(event.set_index, [])
        last_swap[event.set_index] = clock
    return cadence


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0


def summarize_events(events: Iterable[TraceEvent]) -> str:
    """Human-readable digest: counts plus the headline dynamics."""
    log = list(events)
    lines: List[str] = []
    counts = event_counts(log)
    if not counts:
        return "no events recorded"
    width = max(len(kind) for kind in counts)
    for kind in sorted(counts):
        lines.append(f"  {kind:<{width}s} {counts[kind]:>8d}")
    lifetimes = coupling_lifetimes(log)
    spans = coupling_spans(log)
    open_pairs = sum(1 for span in spans if span.end_access is None)
    if spans:
        lines.append(
            f"  couplings: {len(spans)} pairs "
            f"({open_pairs} still open), mean closed lifetime "
            f"{_mean(lifetimes):,.0f} accesses"
        )
    fanout = spill_fanout(log)
    if fanout:
        total_spills = sum(
            count for row in fanout.values() for count in row.values()
        )
        busiest_taker = max(
            fanout, key=lambda taker: sum(fanout[taker].values())
        )
        lines.append(
            f"  spills: {total_spills} across {len(fanout)} taker set(s); "
            f"busiest taker set {busiest_taker} "
            f"({sum(fanout[busiest_taker].values())} spills to "
            f"{len(fanout[busiest_taker])} giver(s))"
        )
    cadence = swap_cadence(log)
    gaps = [gap for series in cadence.values() for gap in series]
    if cadence:
        lines.append(
            f"  policy swaps: {counts.get('policy_swap', 0)} over "
            f"{len(cadence)} set(s), mean inter-swap gap "
            f"{_mean(gaps):,.0f} accesses"
        )
    # A `repro faults` log can consist solely of fault/safe-mode
    # events; give those a digest beyond the bare counts too.
    faults = [e for e in log if isinstance(e, FaultInjected)]
    if faults:
        per_target = Counter(e.target for e in faults)
        breakdown = ", ".join(
            f"{target}={per_target[target]}" for target in sorted(per_target)
        )
        affected = {e.set_index for e in faults if e.set_index >= 0}
        lines.append(
            f"  faults: {len(faults)} injected across "
            f"{len(per_target)} target(s) ({breakdown}); "
            f"{len(affected)} set(s) directly hit"
        )
    safe_entries = [e for e in log if isinstance(e, SafeModeEntry)]
    if safe_entries:
        degraded = {e.set_index for e in safe_entries}
        lines.append(
            f"  safe mode: {len(safe_entries)} entries pinned "
            f"{len(degraded)} set(s) to plain LRU"
        )
    return "\n".join(lines)
