"""Run differencing: compare two finished runs metric by metric.

``repro diff A B`` (and the :func:`diff_results` API under it) lines up
two :class:`~repro.sim.simulator.RunResult` objects — typically the
same trace under two schemes, or the same scheme before/after a change
— and produces a :class:`RunDiff`: per-metric scalar deltas, the
window-aligned metric series of both runs (truncated to the shorter
run; skipped with an explanatory note when the window lengths differ),
and the top-k sets whose mean occupancy diverges most.

Rendering is deliberately **byte-stable**: metric names are sorted,
floats are printed through one fixed-precision formatter and nothing
time- or environment-dependent (wall-clock timings, hostnames, paths)
enters the output, so two invocations over the same inputs produce
identical bytes — diffs of diffs are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # RunResult is hint-only: sim imports obs, not vice versa
    from repro.sim.simulator import RunResult

#: Eight-level bar used for ASCII sparklines (space = empty window).
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _fmt(value: float) -> str:
    """The one float formatter every rendered number goes through."""
    return format(value, ".6g")


def sparkline(values: List[float]) -> str:
    """Render a series as a fixed-height unicode bar strip.

    Scaled to the series' own min/max (a flat series renders as all
    low bars); purely a shape cue next to the exact endpoint numbers.
    """
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int((value - low) / span * top)] for value in values
    )


@dataclass(frozen=True)
class MetricDelta:
    """One scalar metric compared across the two runs (``b - a``)."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> Optional[float]:
        """Fractional change vs ``a``, or None when ``a`` is zero."""
        if self.a == 0:
            return None
        return self.delta / self.a


@dataclass(frozen=True)
class SetDivergence:
    """Mean occupancy of one set under each run, ranked by |delta|."""

    set_index: int
    mean_a: float
    mean_b: float

    @property
    def delta(self) -> float:
        return self.mean_b - self.mean_a


@dataclass
class RunDiff:
    """Structured comparison of two runs (see :func:`diff_results`)."""

    label_a: str
    label_b: str
    scalars: List[MetricDelta] = field(default_factory=list)
    window_length: Optional[int] = None
    num_windows: int = 0
    series: Dict[str, Tuple[List[float], List[float]]] = field(
        default_factory=dict
    )
    series_note: Optional[str] = None
    top_sets: List[SetDivergence] = field(default_factory=list)
    sets_note: Optional[str] = None
    ledger_note: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view (for ``repro diff --json``)."""
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "scalars": [
                {
                    "name": d.name,
                    "a": d.a,
                    "b": d.b,
                    "delta": d.delta,
                    "relative": d.relative,
                }
                for d in self.scalars
            ],
            "window_length": self.window_length,
            "num_windows": self.num_windows,
            "series": {
                name: {"a": pair[0], "b": pair[1]}
                for name, pair in self.series.items()
            },
            "series_note": self.series_note,
            "top_sets": [
                {
                    "set_index": s.set_index,
                    "mean_a": s.mean_a,
                    "mean_b": s.mean_b,
                    "delta": s.delta,
                }
                for s in self.top_sets
            ],
            "sets_note": self.sets_note,
            "ledger_note": self.ledger_note,
        }

    def render(self) -> str:
        """Byte-stable plain-text report of the whole diff."""
        lines: List[str] = []
        lines.append(f"run diff: A = {self.label_a}  |  B = {self.label_b}")
        lines.append("")
        lines.append("scalar metrics (delta = B - A):")
        name_width = max(
            [len("metric")] + [len(d.name) for d in self.scalars]
        )
        header = (
            f"  {'metric':<{name_width}} {'A':>14} {'B':>14}"
            f" {'delta':>14} {'rel':>9}"
        )
        lines.append(header)
        for d in self.scalars:
            rel = (
                f"{d.relative * 100:+.2f}%" if d.relative is not None
                else "n/a"
            )
            lines.append(
                f"  {d.name:<{name_width}} {_fmt(d.a):>14} {_fmt(d.b):>14}"
                f" {_fmt(d.delta):>14} {rel:>9}"
            )
        lines.append("")
        if self.series_note is not None:
            lines.append(f"series: {self.series_note}")
        elif self.series:
            lines.append(
                f"windowed series ({self.num_windows} windows of "
                f"{self.window_length} accesses, aligned):"
            )
            width = max(len(name) for name in self.series)
            for name in sorted(self.series):
                a_values, b_values = self.series[name]
                lines.append(
                    f"  {name:<{width}}  A {sparkline(a_values)}  "
                    f"mean {_fmt(_mean(a_values))}"
                )
                lines.append(
                    f"  {'':<{width}}  B {sparkline(b_values)}  "
                    f"mean {_fmt(_mean(b_values))}"
                )
        if self.sets_note is not None:
            lines.append("")
            lines.append(f"per-set: {self.sets_note}")
        elif self.top_sets:
            lines.append("")
            lines.append(
                f"top {len(self.top_sets)} diverging sets by "
                "mean occupancy (|B - A|):"
            )
            for s in self.top_sets:
                lines.append(
                    f"  set {s.set_index:>6}  A {_fmt(s.mean_a):>10}  "
                    f"B {_fmt(s.mean_b):>10}  delta {_fmt(s.delta):>10}"
                )
        if self.ledger_note is not None:
            lines.append("")
            lines.append(f"ledger: {self.ledger_note}")
        return "\n".join(lines) + "\n"


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _label(result: RunResult) -> str:
    return f"{result.scheme} on {result.trace_name}"


def _scalar_metrics(result: RunResult) -> Dict[str, float]:
    """Every scalar worth diffing: raw counters plus paper metrics."""
    values: Dict[str, float] = {
        name: float(value)
        for name, value in result.stats.counter_snapshot().items()
    }
    values["miss_rate"] = result.stats.miss_rate
    values["mpki"] = result.mpki
    values["amat"] = result.amat
    values["cpi"] = result.cpi
    return values


def diff_results(
    a: RunResult, b: RunResult, top_k: int = 8
) -> RunDiff:
    """Compare two runs into a :class:`RunDiff`.

    Scalars always diff (both runs carry stats).  Series diff only when
    both runs were made with the same ``metrics_window``; runs of
    different lengths are aligned by truncating to the shorter series.
    The per-set section needs both runs' occupancy rows with matching
    set counts; otherwise it degrades to an explanatory note, never an
    error — ``repro diff`` must work on any pair of runs.
    """
    diff = RunDiff(label_a=_label(a), label_b=_label(b))
    scalars_a = _scalar_metrics(a)
    scalars_b = _scalar_metrics(b)
    # Ledger roll-ups join the scalar table only when a run carries a
    # sealed ledger — ledger-less diffs render exactly as before.
    if a.ledger is not None or b.ledger is not None:
        for result, scalars in ((a, scalars_a), (b, scalars_b)):
            if result.ledger is not None:
                for name, value in result.ledger.summary().items():
                    scalars[f"ledger.{name}"] = float(value)
        if a.ledger is None or b.ledger is None:
            missing = "A" if a.ledger is None else "B"
            diff.ledger_note = (
                f"run {missing} carries no capacity-flow ledger "
                f"(re-run with ledger=True / --ledger); its ledger.* "
                f"scalars read as 0"
            )
        else:
            diff.ledger_note = (
                "ledger.* scalars compare sealed capacity-flow ledgers "
                "(see repro explain for attribution)"
            )
    for name in sorted(set(scalars_a) | set(scalars_b)):
        diff.scalars.append(MetricDelta(
            name=name,
            a=scalars_a.get(name, 0.0),
            b=scalars_b.get(name, 0.0),
        ))
    if a.series is None or b.series is None:
        missing = []
        if a.series is None:
            missing.append("A")
        if b.series is None:
            missing.append("B")
        diff.series_note = (
            f"skipped — run(s) {', '.join(missing)} carry no windowed "
            "series (re-run with metrics_window / --window)"
        )
    elif a.series.window_length != b.series.window_length:
        diff.series_note = (
            f"skipped — window lengths differ "
            f"(A={a.series.window_length}, B={b.series.window_length})"
        )
    else:
        diff.window_length = a.series.window_length
        diff.num_windows = min(
            a.series.num_windows, b.series.num_windows
        )
        n = diff.num_windows
        for name in sorted(set(a.series.series) & set(b.series.series)):
            diff.series[name] = (
                list(a.series.series[name][:n]),
                list(b.series.series[name][:n]),
            )
    rows_a = (
        a.series.set_series.get("occupancy") if a.series is not None
        else None
    )
    rows_b = (
        b.series.set_series.get("occupancy") if b.series is not None
        else None
    )
    if not rows_a or not rows_b:
        diff.sets_note = "skipped — per-set occupancy absent from a run"
    elif len(rows_a[0]) != len(rows_b[0]):
        diff.sets_note = (
            f"skipped — set counts differ "
            f"(A={len(rows_a[0])}, B={len(rows_b[0])})"
        )
    else:
        num_sets = len(rows_a[0])
        means_a = [
            sum(row[index] for row in rows_a) / len(rows_a)
            for index in range(num_sets)
        ]
        means_b = [
            sum(row[index] for row in rows_b) / len(rows_b)
            for index in range(num_sets)
        ]
        ranked = sorted(
            range(num_sets),
            key=lambda index: (-abs(means_b[index] - means_a[index]), index),
        )
        diff.top_sets = [
            SetDivergence(
                set_index=index,
                mean_a=means_a[index],
                mean_b=means_b[index],
            )
            for index in ranked[:top_k]
        ]
    return diff
