"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run``      simulate one scheme on one benchmark and print the metrics
             (``--window N`` adds windowed metrics; ``--save-run``,
             ``--series-jsonl`` and ``--series-prom`` export them)
``compare``  run several schemes on one benchmark side by side
``bench``    run a scheme x benchmark grid, optionally in parallel
             (``--jobs N``), with a content-addressed run cache, live
             telemetry (``--telemetry DIR``), and the bench-history
             trend view (``--history``)
``campaign`` crash-recoverable declarative campaigns: ``run SPEC``
             executes (and by default *resumes*) a journaled campaign
             directory, ``resume`` is an explicit alias, and
             ``status DIR`` replays the journal without running
             anything
``top``      live fleet view of a telemetry run directory: per-cell
             progress, worker resources, ETA, stall verdicts
             (``--once`` for a single snapshot + ``status.json``;
             ``--json`` prints the status document to stdout)
``index``    SQLite artifact catalog: ``ingest PATH...`` idempotently
             indexes save_run files, campaign directories and bench
             ledgers; ``query``/``trajectory``/``regressions`` emit
             deterministic sorted JSON
``serve``    run observatory over a run directory: ``/healthz``,
             ``/metrics``, ``/api/status``, ``/api/runs``,
             ``/api/regressions`` and byte-stable HTML dashboards on a
             stdlib HTTP server
``diff``     compare two runs — saved run files or scheme names run
             in-process — as a byte-stable delta report
``explain``  attribute the hit delta between two runs to STEM's
             spatial/temporal decisions (``--json``; ``--out`` renders
             the self-contained HTML attribution page)
``trace``    run one scheme with event tracing (JSONL log + aggregates;
             ``--kinds`` narrows the persisted log to named event kinds)
``sweep``    MPKI vs associativity for chosen schemes
``faults``   deterministic fault-injection campaign + degradation report
``profile``  Figure 1-style capacity-demand profile + classification
``report``   analysis report for one benchmark; ``--out PAGE.html``
             renders the self-contained HTML dashboard instead
``figure``   regenerate one of the paper's figures/tables by name
``overhead`` print the Table 3 storage budget
``list``     enumerate available schemes and benchmarks

``run``, ``compare`` and ``figure`` additionally take ``--profile``
(print per-phase wall-clock and accesses/sec) and ``run``/``compare``
take ``--profile-json PATH`` (write a pytest-benchmark-style report).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.capacity_demand import profile_capacity_demand
from repro.analysis.classification import classify_trace
from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    hierarchy_mode,
    optgap,
    table2,
    table3,
    traffic,
)
from repro.analysis.report import build_report, render_report
from repro._version import __version__
from repro.common.errors import ReproError
from repro.common.io import atomic_write_text
from repro.obs.benchhistory import (
    history_document,
    load_history,
    render_history,
)
from repro.obs.diff import diff_results
from repro.obs.events import EVENT_TYPES
from repro.obs.explain import attribute
from repro.obs.fleet import load_fleet, render_top, write_status
from repro.obs.index import DEFAULT_INDEX_PATH, ArtifactIndex
from repro.obs.server import create_server
from repro.obs.htmlreport import (
    diff_to_html,
    explain_to_html,
    render_run_html,
)
from repro.obs.profile import PhaseTimer, RunProfiler
from repro.obs.sinks import FilteredSink, JsonlSink, RingBufferSink
from repro.obs.tracer import Tracer
from repro.obs.inspect import summarize_events
from repro.resilience.campaign import run_fault_campaign
from repro.resilience.faults import FAULT_TARGETS
from repro.sim.cache import RunCache, load_run, save_run
from repro.sim.campaign import campaign_status, run_campaign
from repro.sim.columnar import BACKENDS
from repro.sim.config import ExperimentScale, available_schemes, make_scheme
from repro.sim.results import format_series, format_table
from repro.sim.runner import associativity_sweep, run_benchmarks
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import benchmark_names, make_benchmark_trace

_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "table2": table2,
    "table3": table3,
    "headline": headline,
    "ablations": ablations,
    "traffic": traffic,
    "hierarchy": hierarchy_mode,
    "optgap": optgap,
}


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sets", type=int, default=256,
                        help="number of LLC sets (default 256)")
    parser.add_argument("--assoc", type=int, default=16,
                        help="associativity (default 16)")
    parser.add_argument("--length", type=int, default=300_000,
                        help="trace length in accesses (default 300000)")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=list(BACKENDS), default="auto",
        help="simulation backend: the scalar oracle ('python'), the "
             "columnar numpy kernel ('numpy'), or pick automatically "
             "('auto', the default); results are identical either way"
    )


def _add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall-clock timings and accesses/sec"
    )
    parser.add_argument(
        "--profile-json", metavar="PATH", default=None,
        help="write a pytest-benchmark-style JSON profile to PATH"
    )


def _scale_from(args: argparse.Namespace) -> ExperimentScale:
    return ExperimentScale(
        num_sets=args.sets,
        associativity=args.assoc,
        trace_length=args.length,
    )


def _finish_profile(profiler: RunProfiler, args: argparse.Namespace) -> None:
    """Shared ``--profile`` / ``--profile-json`` epilogue."""
    if getattr(args, "profile", False):
        print(profiler.render())
    profile_json = getattr(args, "profile_json", None)
    if profile_json:
        profiler.save_bench_json(profile_json)
        print(f"wrote profile report to {profile_json}")


def _cmd_run(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    trace = make_benchmark_trace(
        args.benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    cache = make_scheme(args.scheme, scale.geometry())
    result = run_trace(
        cache, trace,
        warmup_fraction=scale.warmup_fraction,
        metrics_window=args.window,
        backend=args.backend,
        ledger=args.ledger,
    )
    print(f"{result.scheme} on {result.trace_name}: "
          f"MPKI={result.mpki:.3f}  AMAT={result.amat:.2f}  "
          f"CPI={result.cpi:.3f}  miss_rate={result.miss_rate:.3f}")
    if result.ledger is not None:
        summary = result.ledger.summary()
        print(f"ledger: {summary['coupling_episodes']} coupling "
              f"episode(s), {summary['policy_swaps']} policy swap(s), "
              f"{summary['lent']} way-accesses lent "
              f"({summary['spill_events']} spills, "
              f"{summary['coop_hit_events']} cooperative hits)")
    if result.series is not None:
        print(f"metrics: {result.series.num_windows} windows of "
              f"{result.series.window_length} accesses, "
              f"{len(result.series.series)} series")
        if args.series_jsonl:
            result.series.save_jsonl(args.series_jsonl)
            print(f"wrote series JSONL to {args.series_jsonl}")
        if args.series_prom:
            result.series.save_prometheus(args.series_prom)
            print(f"wrote Prometheus text to {args.series_prom}")
    if args.save_run:
        save_run(args.save_run, result)
        print(f"wrote run to {args.save_run}")
    if args.profile or args.profile_json:
        profiler = RunProfiler()
        profiler.add(result)
        _finish_profile(profiler, args)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    trace = make_benchmark_trace(
        args.benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    baseline = None
    profiler = RunProfiler()
    print(f"{'scheme':>10s} {'MPKI':>9s} {'AMAT':>9s} {'CPI':>8s} "
          f"{'vs LRU':>8s}")
    for scheme in args.schemes.split(","):
        cache = make_scheme(scheme.strip(), scale.geometry())
        result = run_trace(
            cache, trace, warmup_fraction=scale.warmup_fraction
        )
        profiler.add(result)
        if baseline is None:
            baseline = result.mpki
        relative = result.mpki / baseline if baseline else float("nan")
        print(f"{result.scheme:>10s} {result.mpki:>9.3f} "
              f"{result.amat:>9.2f} {result.cpi:>8.3f} {relative:>8.3f}")
    if args.profile or args.profile_json:
        _finish_profile(profiler, args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.history:
        history = load_history(args.history_file)
        if args.json:
            # Machine-readable verdicts so CI can gate on trajectory:
            # exit 3 when any scheme regressed versus its recent best.
            document = history_document(history)
            print(json.dumps(document, indent=2, sort_keys=True))
            return 3 if document["regressed"] else 0
        print(render_history(history), end="")
        return 0
    scale = _scale_from(args)
    schemes = [s.strip() for s in args.schemes.split(",")]
    benchmarks = (
        [b.strip() for b in args.benchmarks.split(",")]
        if args.benchmarks else None
    )
    run_cache = None
    if not args.no_run_cache:
        run_cache = RunCache(args.run_cache)
    profiler = RunProfiler()
    matrix = run_benchmarks(
        schemes,
        benchmarks=benchmarks,
        scale=scale,
        profiler=profiler,
        max_workers=args.jobs,
        run_cache=run_cache,
        telemetry_dir=args.telemetry,
        backend=args.backend,
    )
    table = matrix.metric_table(lambda result: result.mpki)
    print(format_table(table, matrix.schemes, title="MPKI"))
    for failure in matrix.failures:
        print(f"FAILED {failure.scheme} on {failure.workload}: "
              f"{failure.error_type}: {failure.message}")
    if run_cache is not None:
        print(f"run cache ({run_cache.root}): {run_cache.hits} hit(s), "
              f"{run_cache.misses} miss(es), {len(run_cache)} stored")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry} "
              f"(watch with: repro top {args.telemetry})")
    if args.profile or args.profile_json:
        _finish_profile(profiler, args)
    return 1 if matrix.failures else 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    profiler: Optional[RunProfiler] = None
    if args.profile or args.profile_json:
        profiler = RunProfiler()
    outcome = run_campaign(
        args.spec,
        directory=args.dir,
        jobs=args.jobs,
        fresh=args.fresh,
        run_cache_dir=args.run_cache,
        telemetry_dir=args.telemetry,
        profiler=profiler,
        index_db=args.index,
    )
    print(f"campaign {outcome.spec.name}: {outcome.total_cells} cells — "
          f"{outcome.executed} executed, {outcome.resumed} resumed from "
          f"the journal, {len(outcome.quarantined)} quarantined")
    for entry in outcome.quarantined:
        print(f"QUARANTINED cell {entry.cell:05d} {entry.cell_id}: "
              f"{entry.failure.error_type}: {entry.failure.message}")
    for label in ("matrix", "summary", "report"):
        print(f"wrote {outcome.outputs[label]}")
    if args.telemetry:
        print(f"telemetry written to {args.telemetry} "
              f"(watch with: repro top {args.telemetry})")
    if profiler is not None:
        _finish_profile(profiler, args)
    return 1 if outcome.quarantined else 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    print(campaign_status(args.dir), end="")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"repro top: no telemetry directory at {run_dir}",
              file=sys.stderr)
        return 2

    def snapshot() -> tuple:
        status = load_fleet(run_dir, stall_after=args.stall_after)
        write_status(run_dir, status)
        return status, render_top(status)

    if args.json:
        # The status.json document on stdout, no file round-trip — the
        # scriptable twin of --once (same schema, same exit-3 contract).
        status = load_fleet(run_dir, stall_after=args.stall_after)
        print(json.dumps(status.as_dict(), indent=2, sort_keys=True))
        return 3 if status.stalled_cells else 0
    if args.once:
        status, rendered = snapshot()
        print(rendered, end="")
        print(f"wrote {run_dir / 'status.json'}")
        return 3 if status.stalled_cells else 0
    # Refreshing view: redraw until the grid is finished (or ^C).  The
    # aggregator only reads, so watching a live grid from another
    # terminal is safe.
    try:
        while True:
            status, rendered = snapshot()
            sys.stdout.write("\x1b[2J\x1b[H" + rendered)
            sys.stdout.flush()
            if status.finished:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
    return 0


def _open_index(args: argparse.Namespace) -> ArtifactIndex:
    return ArtifactIndex(args.db)


def _cmd_index_ingest(args: argparse.Namespace) -> int:
    with _open_index(args) as index:
        report = index.ingest(*args.paths)
    print(report.render(), end="")
    return 0


def _print_json(document) -> int:
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


def _cmd_index_query(args: argparse.Namespace) -> int:
    with _open_index(args) as index:
        return _print_json(index.runs(
            scheme=args.scheme,
            benchmark=args.benchmark,
            since=args.since,
        ))


def _cmd_index_trajectory(args: argparse.Namespace) -> int:
    with _open_index(args) as index:
        return _print_json(index.trajectory(args.scheme, args.benchmark))


def _cmd_index_regressions(args: argparse.Namespace) -> int:
    with _open_index(args) as index:
        return _print_json(
            index.regressions(window=args.window, ratio=args.ratio)
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"repro serve: no run directory at {run_dir}",
              file=sys.stderr)
        return 2
    index: Optional[ArtifactIndex] = None
    if args.db is not None:
        index = ArtifactIndex(args.db)
        index.ingest(run_dir)
    server = create_server(
        run_dir,
        host=args.host,
        port=args.port,
        index=index,
        stall_after=args.stall_after,
    )

    def _terminate(signum, frame) -> None:
        raise KeyboardInterrupt

    # SIGTERM (CI teardown, process managers) shuts down as cleanly as
    # ^C: close the socket, exit 0.
    previous = signal.signal(signal.SIGTERM, _terminate)
    print(f"repro observatory serving {run_dir} "
          f"on http://{args.host}:{server.port}/", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        server.index.close()
    return 0


def _parse_kinds(raw: Optional[str]) -> Optional[frozenset]:
    """Validate a ``--kinds`` CSV against the registered event kinds."""
    if raw is None:
        return None
    kinds = frozenset(
        token.strip() for token in raw.split(",") if token.strip()
    )
    unknown = sorted(kinds - set(EVENT_TYPES))
    if unknown:
        raise ReproError(
            f"unknown event kind(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(EVENT_TYPES))}"
        )
    if not kinds:
        raise ReproError("--kinds needs at least one event kind")
    return kinds


def _cmd_trace(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    kinds = _parse_kinds(args.kinds)
    trace = make_benchmark_trace(
        args.benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    ring = RingBufferSink(capacity=args.buffer)
    # The filter sits between tracer and sinks: emission (and the
    # cache's clocks/stats) is untouched, only what is kept narrows.
    tracer = Tracer(FilteredSink(ring, kinds) if kinds else ring)
    jsonl: Optional[JsonlSink] = None
    if args.events:
        jsonl = JsonlSink(args.events)
        tracer.add_sink(
            FilteredSink(jsonl, kinds) if kinds else jsonl
        )
    cache = make_scheme(args.scheme, scale.geometry(), tracer=tracer)
    # No warm-up discard: the event log should keep a monotonic access
    # clock (reset_stats would rewind it mid-stream).
    result = run_trace(cache, trace, warmup_fraction=0.0)
    tracer.close()
    print(f"{result.scheme} on {result.trace_name}: "
          f"MPKI={result.mpki:.3f}  AMAT={result.amat:.2f}  "
          f"CPI={result.cpi:.3f}  miss_rate={result.miss_rate:.3f}")
    print(f"{tracer.events_emitted} events emitted "
          f"({ring.dropped} beyond the ring buffer)")
    if kinds:
        print(f"kinds filter: {', '.join(sorted(kinds))} "
              f"({ring.total_recorded} kept)")
    print(summarize_events(ring.events))
    if jsonl is not None:
        print(f"wrote {jsonl.total_recorded} events to {jsonl.path}")
    if args.manifest and result.manifest is not None:
        print(json.dumps(result.manifest.as_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    trace = make_benchmark_trace(
        args.benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    associativities = [int(a) for a in args.associativities.split(",")]
    schemes = [s.strip() for s in args.schemes.split(",")]
    curves = associativity_sweep(trace, schemes, associativities, scale=scale)
    series = {
        scheme: [result.mpki for result in results]
        for scheme, results in curves.items()
    }
    print(format_series(
        series, associativities,
        x_label="scheme\\assoc",
        title=f"MPKI vs associativity — {args.benchmark}",
        precision=2,
    ))
    return 0


#: Default campaign: a spread of counter, tag, table, heap and bus faults.
_DEFAULT_FAULT_PLAN = "sc_s:2,sc_t:2,shadow:4,association:1,heap:2,trace:4"


def _cmd_faults(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    tracer: Optional[Tracer] = None
    jsonl: Optional[JsonlSink] = None
    if args.events:
        jsonl = JsonlSink(args.events)
        tracer = Tracer(jsonl)
    report = run_fault_campaign(
        args.scheme,
        args.benchmark,
        plan=args.plan,
        seed=args.seed,
        scale=scale,
        tracer=tracer,
    )
    if tracer is not None:
        tracer.close()
    print(report.render())
    if jsonl is not None:
        print(f"wrote {jsonl.total_recorded} events to {jsonl.path}")
    if args.json:
        report.save(args.json)
        print(f"wrote campaign report to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    trace = make_benchmark_trace(
        args.benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    profile = profile_capacity_demand(
        trace,
        num_sets=scale.num_sets,
        interval_length=max(1, scale.trace_length // 8),
    )
    print(f"capacity-demand bands for {args.benchmark}:")
    for band, fraction in profile.mean_distribution().items():
        if fraction > 0.005:
            print(f"  {str(band):>10s}: {fraction:6.1%}")
    result = classify_trace(
        trace, num_sets=scale.num_sets, associativity=scale.associativity
    )
    print(f"classification: Class {result.label} "
          f"(givers {result.giver_fraction:.1%}, "
          f"takers {result.taker_fraction:.1%}, "
          f"thrash {result.thrash_fraction:.1%})")
    return 0


def _windowed_run(scheme: str, benchmark: str, scale, window: int):
    """One in-process run with windowed metrics (diff/report inputs)."""
    trace = make_benchmark_trace(
        benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    cache = make_scheme(scheme, scale.geometry())
    return run_trace(
        cache, trace,
        warmup_fraction=scale.warmup_fraction,
        metrics_window=window,
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    scale = _scale_from(args)

    def resolve(operand: str):
        # A path to a saved run wins; anything else is a scheme name
        # simulated in-process on --benchmark at the current scale.
        if Path(operand).is_file():
            return load_run(operand)
        return _windowed_run(operand, args.benchmark, scale, args.window)

    diff = diff_results(resolve(args.a), resolve(args.b), top_k=args.top_k)
    rendered = diff.render()
    if args.json:
        atomic_write_text(
            Path(args.json),
            json.dumps(diff.as_dict(), indent=2, sort_keys=True) + "\n",
        )
        print(f"wrote diff JSON to {args.json}")
    if args.out:
        atomic_write_text(Path(args.out), rendered)
        print(f"wrote diff report to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _ledgered_run(scheme: str, benchmark: str, scale):
    """One in-process run with the capacity-flow ledger attached."""
    trace = make_benchmark_trace(
        benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    cache = make_scheme(scheme, scale.geometry())
    return run_trace(
        cache, trace,
        warmup_fraction=scale.warmup_fraction,
        ledger=True,
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    scale = _scale_from(args)

    def resolve(operand: str):
        # Same operand contract as 'repro diff': a saved-run path wins,
        # anything else runs in-process (with a ledger, so the temporal
        # component and per-set rows are available).
        if Path(operand).is_file():
            return load_run(operand)
        return _ledgered_run(operand, args.benchmark, scale)

    attribution = attribute(resolve(args.a), resolve(args.b))
    rendered = attribution.render(top_k=args.top_k)
    if args.json:
        atomic_write_text(
            Path(args.json),
            json.dumps(
                attribution.as_dict(), indent=2, sort_keys=True
            ) + "\n",
        )
        print(f"wrote explain JSON to {args.json}")
    if args.out:
        atomic_write_text(Path(args.out), explain_to_html(attribution))
        print(f"wrote explain HTML to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    scale = _scale_from(args)
    if not args.out:
        # Legacy surface: the plain-text analysis report on stdout.
        report = build_report(args.benchmark, scale=scale)
        print(render_report(report))
        return 0
    run_a = _windowed_run(args.scheme, args.benchmark, scale, args.window)
    if args.vs:
        run_b = _windowed_run(args.vs, args.benchmark, scale, args.window)
        html = diff_to_html(run_a, run_b)
    else:
        html = render_run_html(run_a)
    atomic_write_text(Path(args.out), html)
    print(f"wrote HTML report to {args.out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    module = _FIGURES[args.name]
    if args.profile:
        with PhaseTimer(args.name) as timer:
            module.main()
        print(f"figure {args.name}: {timer.seconds:.3f}s wall-clock")
    else:
        module.main()
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    table3.main()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("schemes:    " + ", ".join(available_schemes()))
    print("benchmarks: " + ", ".join(benchmark_names()))
    print("figures:    " + ", ".join(sorted(_FIGURES)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STEM (MICRO 2010) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="simulate one scheme on one benchmark"
    )
    run_parser.add_argument("scheme")
    run_parser.add_argument("benchmark", choices=benchmark_names())
    run_parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="sample windowed metrics every N accesses"
    )
    run_parser.add_argument(
        "--save-run", metavar="PATH", default=None,
        help="save the full run (stats, metrics, series) as JSON"
    )
    run_parser.add_argument(
        "--ledger", action="store_true",
        help="seal a capacity-flow ledger into the run (rides along in "
             "--save-run files; input to 'repro explain')"
    )
    run_parser.add_argument(
        "--series-jsonl", metavar="PATH", default=None,
        help="export the windowed series as JSONL (needs --window)"
    )
    run_parser.add_argument(
        "--series-prom", metavar="PATH", default=None,
        help="export Prometheus-style text metrics (needs --window)"
    )
    _add_scale_arguments(run_parser)
    _add_backend_argument(run_parser)
    _add_profile_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    compare_parser = commands.add_parser(
        "compare", help="run several schemes side by side"
    )
    compare_parser.add_argument("benchmark", choices=benchmark_names())
    compare_parser.add_argument(
        "--schemes", default="LRU,DIP,PeLIFO,V-Way,SBC,STEM"
    )
    _add_scale_arguments(compare_parser)
    _add_profile_arguments(compare_parser)
    compare_parser.set_defaults(handler=_cmd_compare)

    bench_parser = commands.add_parser(
        "bench",
        help="scheme x benchmark grid with parallelism and run caching",
    )
    bench_parser.add_argument(
        "--schemes", default="lru,dip,stem",
        help="comma-separated scheme list (default lru,dip,stem)"
    )
    bench_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark list (default: all)"
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard grid cells across N worker processes"
    )
    bench_parser.add_argument(
        "--run-cache", metavar="DIR", default=".repro-run-cache",
        help="content-addressed run cache directory "
             "(default .repro-run-cache)"
    )
    bench_parser.add_argument(
        "--no-run-cache", action="store_true",
        help="always simulate; do not read or write the run cache"
    )
    bench_parser.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="write live fleet telemetry (spans, heartbeats, "
             "status.json) to DIR; watch it with 'repro top DIR'"
    )
    bench_parser.add_argument(
        "--history", action="store_true",
        help="print the bench-history trend view and exit "
             "(no simulation)"
    )
    bench_parser.add_argument(
        "--history-file", metavar="PATH", default="BENCH_HISTORY.jsonl",
        help="bench-history ledger location "
             "(default BENCH_HISTORY.jsonl)"
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="with --history: print machine-readable regression "
             "verdicts (exit 3 when any scheme regressed)"
    )
    _add_scale_arguments(bench_parser)
    _add_backend_argument(bench_parser)
    _add_profile_arguments(bench_parser)
    bench_parser.set_defaults(handler=_cmd_bench)

    campaign_parser = commands.add_parser(
        "campaign",
        help="crash-recoverable declarative campaigns (run/resume/status)",
        description=(
            "A campaign spec (JSON; TOML on Python 3.11+) names "
            "benchmark sets, schemes, geometries, seeds and optional "
            "fault plans; the cross product runs through the parallel "
            "engine with every cell journaled to campaign.jsonl.  "
            "'run' resumes by default — kill it anywhere and run it "
            "again; completed cells are served from the run cache and "
            "the final artefacts are byte-identical to an "
            "uninterrupted run."
        ),
    )
    campaign_commands = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )
    for verb, verb_help in (
        ("run", "run (resuming by default) a campaign spec"),
        ("resume", "alias of run: resume an interrupted campaign"),
    ):
        verb_parser = campaign_commands.add_parser(verb, help=verb_help)
        verb_parser.add_argument("spec", help="campaign spec file")
        verb_parser.add_argument(
            "--dir", metavar="DIR", default=None,
            help="campaign state directory "
                 "(default: <spec stem>.campaign beside the spec)"
        )
        verb_parser.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="shard cells across N worker processes"
        )
        verb_parser.add_argument(
            "--fresh", action="store_true",
            help="discard the journal and quarantine reports and "
                 "start over (the run cache is kept)"
        )
        verb_parser.add_argument(
            "--run-cache", metavar="DIR", default=None,
            help="run cache directory (default: runcache/ inside the "
                 "campaign directory)"
        )
        verb_parser.add_argument(
            "--telemetry", metavar="DIR", default=None,
            help="write live fleet telemetry to DIR "
                 "(watch with 'repro top DIR')"
        )
        verb_parser.add_argument(
            "--index", metavar="DB", default=None,
            help="ingest the finished campaign into this observatory "
                 "index database (see 'repro index')"
        )
        _add_profile_arguments(verb_parser)
        verb_parser.set_defaults(handler=_cmd_campaign_run)
    status_parser = campaign_commands.add_parser(
        "status", help="replay a campaign journal without running"
    )
    status_parser.add_argument(
        "dir", help="campaign state directory (holds campaign.jsonl)"
    )
    status_parser.set_defaults(handler=_cmd_campaign_status)

    top_parser = commands.add_parser(
        "top",
        help="live fleet view of a telemetry run directory",
        description=(
            "Merge a run directory's telemetry channel (grid.jsonl + "
            "cells/*.jsonl) into a live view: per-cell progress, "
            "worker RSS/CPU/GC, accesses/sec, ETA, and stall verdicts "
            "for workers whose heartbeats stopped.  Each snapshot also "
            "refreshes the machine-readable status.json.  Exit code 3 "
            "flags a stalled worker under --once."
        ),
    )
    top_parser.add_argument(
        "run_dir", help="telemetry directory (see bench --telemetry)"
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit instead of refreshing"
    )
    top_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval for the live view (default 2.0)"
    )
    top_parser.add_argument(
        "--stall-after", type=float, default=5.0, metavar="SECONDS",
        help="heartbeat age that flags a running cell as stalled "
             "(default 5.0)"
    )
    top_parser.add_argument(
        "--json", action="store_true",
        help="print the status.json document to stdout (no file "
             "round-trip; exit 3 flags a stalled worker)"
    )
    top_parser.set_defaults(handler=_cmd_top)

    index_parser = commands.add_parser(
        "index",
        help="SQLite artifact catalog over runs, campaigns and bench "
             "history",
        description=(
            "One queryable index over the repository's observability "
            "artifacts.  'ingest' is idempotent (re-ingesting the same "
            "artifacts changes zero rows) and tolerates torn journal "
            "tails; the query verbs emit deterministic sorted JSON."
        ),
    )
    index_commands = index_parser.add_subparsers(
        dest="index_command", required=True
    )

    def _add_db_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db", metavar="PATH", default=DEFAULT_INDEX_PATH,
            help=f"index database (default {DEFAULT_INDEX_PATH})"
        )

    ingest_parser = index_commands.add_parser(
        "ingest",
        help="index save_run files, campaign dirs and bench ledgers",
    )
    ingest_parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="save_run JSON file, campaign directory, bench-history "
             "JSONL ledger, or a directory to scan for those"
    )
    _add_db_argument(ingest_parser)
    ingest_parser.set_defaults(handler=_cmd_index_ingest)

    query_parser = index_commands.add_parser(
        "query", help="list indexed runs as sorted JSON"
    )
    query_parser.add_argument(
        "--scheme", default=None,
        help="filter by scheme name (case-insensitive)"
    )
    query_parser.add_argument(
        "--benchmark", default=None, help="filter by benchmark name"
    )
    query_parser.add_argument(
        "--since", metavar="ISO8601", default=None,
        help="only runs ingested at or after this timestamp"
    )
    _add_db_argument(query_parser)
    query_parser.set_defaults(handler=_cmd_index_query)

    trajectory_parser = index_commands.add_parser(
        "trajectory",
        help="one (scheme, benchmark) pair's runs in ingestion order",
    )
    trajectory_parser.add_argument("scheme")
    trajectory_parser.add_argument("benchmark")
    _add_db_argument(trajectory_parser)
    trajectory_parser.set_defaults(handler=_cmd_index_trajectory)

    regressions_parser = index_commands.add_parser(
        "regressions",
        help="trajectory verdicts over the indexed bench samples",
    )
    regressions_parser.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="trailing reference window (default 5)"
    )
    regressions_parser.add_argument(
        "--ratio", type=float, default=0.8, metavar="R",
        help="latest/reference ratio that flags a regression "
             "(default 0.8)"
    )
    _add_db_argument(regressions_parser)
    regressions_parser.set_defaults(handler=_cmd_index_regressions)

    serve_parser = commands.add_parser(
        "serve",
        help="HTTP observatory over a run directory (stdlib only)",
        description=(
            "Serve /healthz, /metrics (Prometheus exposition with "
            "run/scheme/benchmark labels), /api/status (live fleet "
            "state), /api/runs, /api/regressions and byte-stable HTML "
            "dashboards over a run directory.  Without --db the "
            "directory is ingested into an ephemeral in-memory index "
            "at startup."
        ),
    )
    serve_parser.add_argument(
        "run_dir", help="run directory to serve (artifacts + telemetry)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321,
        help="bind port; 0 picks an ephemeral port (default 8321)"
    )
    serve_parser.add_argument(
        "--db", metavar="PATH", default=None,
        help="serve this persistent index database instead of an "
             "in-memory one (the run directory is still ingested)"
    )
    serve_parser.add_argument(
        "--stall-after", type=float, default=5.0, metavar="SECONDS",
        help="heartbeat age that flags a running cell as stalled "
             "(default 5.0)"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    diff_parser = commands.add_parser(
        "diff",
        help="compare two runs (saved run files or scheme names)",
        description=(
            "Each operand is either a run file saved by "
            "'repro run --save-run' or a scheme name simulated "
            "in-process on --benchmark.  The report is byte-stable: "
            "identical inputs render identical bytes."
        ),
    )
    diff_parser.add_argument("a", help="run file or scheme name (A)")
    diff_parser.add_argument("b", help="run file or scheme name (B)")
    diff_parser.add_argument(
        "--benchmark", default="mcf", choices=benchmark_names(),
        help="benchmark for scheme-name operands (default mcf)"
    )
    diff_parser.add_argument(
        "--window", type=int, default=10_000, metavar="N",
        help="metrics window for in-process runs (default 10000)"
    )
    diff_parser.add_argument(
        "--top-k", type=int, default=8, metavar="K",
        help="diverging sets to list (default 8)"
    )
    diff_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the structured diff as JSON to PATH"
    )
    diff_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the text report to PATH instead of stdout"
    )
    _add_scale_arguments(diff_parser)
    diff_parser.set_defaults(handler=_cmd_diff)

    explain_parser = commands.add_parser(
        "explain",
        help="attribute a hit delta to spatial/temporal decisions",
        description=(
            "Decompose the hit delta between two runs into the paper's "
            "Figure 6 components: spatial (cooperative hits in "
            "borrowed space), temporal (hits under a swapped insertion "
            "policy) and residual — summing exactly to the total, "
            "globally and per set.  Operands follow 'repro diff': a "
            "saved run file (ideally from 'repro run --ledger "
            "--save-run') or a scheme name run in-process with a "
            "ledger.  Output is byte-stable."
        ),
    )
    explain_parser.add_argument("a", help="run file or scheme name (A)")
    explain_parser.add_argument("b", help="run file or scheme name (B)")
    explain_parser.add_argument(
        "--benchmark", default="mcf", choices=benchmark_names(),
        help="benchmark for scheme-name operands (default mcf)"
    )
    explain_parser.add_argument(
        "--top-k", type=int, default=8, metavar="K",
        help="diverging sets to list in the text report (default 8)"
    )
    explain_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the structured attribution as JSON to PATH"
    )
    explain_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the self-contained HTML attribution page to PATH "
             "instead of printing the text report"
    )
    _add_scale_arguments(explain_parser)
    explain_parser.set_defaults(handler=_cmd_explain)

    trace_parser = commands.add_parser(
        "trace", help="run one scheme with event tracing"
    )
    trace_parser.add_argument("scheme")
    trace_parser.add_argument("benchmark", choices=benchmark_names())
    trace_parser.add_argument(
        "--events", metavar="PATH", default=None,
        help="write the event log as JSONL to PATH"
    )
    trace_parser.add_argument(
        "--buffer", type=int, default=None, metavar="N",
        help="keep only the last N events for the printed summary"
    )
    trace_parser.add_argument(
        "--kinds", metavar="K1,K2,...", default=None,
        help="keep only these event kinds in the summary and JSONL log "
             f"(known: {', '.join(sorted(EVENT_TYPES))})"
    )
    trace_parser.add_argument(
        "--manifest", action="store_true",
        help="also print the run manifest as JSON"
    )
    _add_scale_arguments(trace_parser)
    trace_parser.set_defaults(handler=_cmd_trace)

    sweep_parser = commands.add_parser(
        "sweep", help="MPKI vs associativity"
    )
    sweep_parser.add_argument("benchmark", choices=benchmark_names())
    sweep_parser.add_argument("--schemes", default="LRU,DIP,SBC,STEM")
    sweep_parser.add_argument(
        "--associativities", default="2,4,8,12,16,24,32"
    )
    _add_scale_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    faults_parser = commands.add_parser(
        "faults",
        help="run a deterministic fault-injection campaign",
        description=(
            "Inject faults from a plan (targets: "
            + ", ".join(FAULT_TARGETS)
            + "; syntax target[:count][@start[-stop]], comma-separated) "
            "and report the degradation versus the fault-free run."
        ),
    )
    faults_parser.add_argument("scheme")
    faults_parser.add_argument("benchmark", choices=benchmark_names())
    faults_parser.add_argument(
        "--plan", default=_DEFAULT_FAULT_PLAN,
        help=f"fault plan (default {_DEFAULT_FAULT_PLAN!r})"
    )
    faults_parser.add_argument(
        "--seed", type=int, default=0xACE1,
        help="campaign seed: scheme LFSR + fault schedule (default 0xACE1)"
    )
    faults_parser.add_argument(
        "--events", metavar="PATH", default=None,
        help="write fault/safe-mode events as JSONL to PATH"
    )
    faults_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the campaign report as JSON to PATH"
    )
    _add_scale_arguments(faults_parser)
    faults_parser.set_defaults(handler=_cmd_faults)

    profile_parser = commands.add_parser(
        "profile", help="capacity-demand profile + classification"
    )
    profile_parser.add_argument("benchmark", choices=benchmark_names())
    _add_scale_arguments(profile_parser)
    profile_parser.set_defaults(handler=_cmd_profile)

    report_parser = commands.add_parser(
        "report",
        help="analysis report; --out renders the HTML dashboard",
    )
    report_parser.add_argument("benchmark", choices=benchmark_names())
    report_parser.add_argument(
        "--scheme", default="stem",
        help="scheme for the HTML dashboard (default stem)"
    )
    report_parser.add_argument(
        "--vs", metavar="SCHEME", default=None,
        help="render an A/B dashboard against this scheme"
    )
    report_parser.add_argument(
        "--window", type=int, default=10_000, metavar="N",
        help="metrics window for the dashboard run (default 10000)"
    )
    report_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write a self-contained HTML report to PATH "
             "(without it, print the legacy text report)"
    )
    _add_scale_arguments(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    figure_parser = commands.add_parser(
        "figure", help="regenerate a paper figure/table"
    )
    figure_parser.add_argument("name", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--profile", action="store_true",
        help="print the figure's total wall-clock time"
    )
    figure_parser.set_defaults(handler=_cmd_figure)

    overhead_parser = commands.add_parser(
        "overhead", help="print the Table 3 storage budget"
    )
    overhead_parser.set_defaults(handler=_cmd_overhead)

    list_parser = commands.add_parser(
        "list", help="enumerate schemes, benchmarks and figures"
    )
    list_parser.set_defaults(handler=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library errors (bad configuration, malformed traces/files, watchdog
    timeouts, ...) are reported as one ``repro: error:`` line on stderr
    with exit code 2 — never a bare traceback; an interrupt exits 130.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
