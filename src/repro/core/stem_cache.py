"""The STEM LLC — spatiotemporal set-level capacity management.

This is the paper's contribution (Section 4), assembled from the
substrate pieces:

* every set carries a :class:`~repro.core.scdm.SetMonitor` (shadow set
  + SC_S/SC_T saturating counters);
* every set duels its own replacement policy between LRU and BIP,
  swapping whenever SC_T saturates (set-level temporal management);
* takers (saturated SC_S) couple with the least-saturated giver from
  the hardware heap, spill victims into it under *receiving control*
  (the giver must still look like a giver), and decouple once the giver
  has evicted every cooperatively cached block (spatial management);
* a spilled block is inserted into the giver according to the giver's
  own current temporal policy (Section 4.6's last sentence).

The class exposes the same ``access() -> AccessKind`` protocol as every
other scheme, so the simulator, hierarchy, and experiment harness treat
STEM, SBC, V-Way and the plain policy caches interchangeably.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.access import AccessKind
from repro.cache.block import BlockView, ShadowView
from repro.cache.geometry import CacheGeometry
from repro.common.errors import ConfigError, InvariantViolation, SimulationError
from repro.common.hashing import H3Hash
from repro.common.rng import Lfsr
from repro.common.stats import CacheStats
from repro.core.config import StemConfig
from repro.core.scdm import SetMonitor
from repro.obs.events import (
    CoopHit,
    Coupling,
    Decoupling,
    Eviction,
    PolicySwap,
    SafeModeEntry,
    ShadowHit,
    Spill,
    SpillReject,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.spatial.association import AssociationTable
from repro.spatial.heap import GiverHeap

_MODE_LRU = 0
_MODE_BIP = 1

_UNCOUPLED = 0
_TAKER = 1
_GIVER = 2

#: Exception classes the safe-mode access path treats as recoverable
#: corruption symptoms.  Structured invariant errors are the designed
#: signal; the builtin errors cover corruption that derails indexing
#: before any invariant check runs (e.g. a glitched association entry
#: sending a probe to a set that does not exist).
_RECOVERABLE = (SimulationError, IndexError, KeyError, ValueError, TypeError)


class StemCache:
    """SpatioTEmporally Managed last level cache."""

    name = "STEM"

    def __init__(
        self,
        geometry: CacheGeometry,
        config: Optional[StemConfig] = None,
        rng: Optional[Lfsr] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if geometry.num_sets < 2:
            raise ConfigError("STEM needs at least two sets to couple")
        self.geometry = geometry
        self.mapper = geometry.mapper
        self.config = config if config is not None else StemConfig()
        self.rng = rng if rng is not None else Lfsr()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = CacheStats()
        # Lifetime accesses folded in by reset_stats(); underscore-
        # prefixed so the manifest's scheme-config hash ignores it.
        self._access_base = 0
        self._hash = H3Hash(
            in_bits=geometry.tag_bits,
            out_bits=self.config.shadow_tag_bits,
            seed=self.config.hash_seed,
        )
        num_sets = geometry.num_sets
        assoc = geometry.associativity
        # Block state: key = (tag << 1) | cc_bit  ->  way.
        self._lookup: List[dict] = [{} for _ in range(num_sets)]
        self._way_key: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * assoc for _ in range(num_sets)
        ]
        self._free: List[List[int]] = [
            list(range(assoc - 1, -1, -1)) for _ in range(num_sets)
        ]
        self._order: List[List[int]] = [[] for _ in range(num_sets)]
        # Temporal state: per-set policy mode, starting from LRU.
        self._mode: List[int] = [_MODE_LRU] * num_sets
        # The SCDM.
        self.monitors: List[SetMonitor] = [
            SetMonitor(
                associativity=assoc,
                counter_bits=self.config.counter_bits,
                spatial_ratio_bits=self.config.spatial_ratio_bits,
            )
            for _ in range(num_sets)
        ]
        # Spatial state: pairing and the candidate-giver heap.
        self.association = AssociationTable(num_sets)
        self.heap = GiverHeap(self.config.heap_capacity)
        self._coupled_role: List[int] = [_UNCOUPLED] * num_sets
        self._cc_count: List[int] = [0] * num_sets
        # Resilience state: sets pinned to plain LRU after recovery.
        self._in_safe_mode: List[bool] = [False] * num_sets
        # Attribution counters for the capacity-flow ledger, maintained
        # only under the tracer guard (zero cost when tracing is off)
        # and zeroed with the stats so they cover the measured window.
        # Underscore-prefixed: the manifest's scheme hash ignores them.
        self._led_hits: List[int] = [0] * num_sets
        self._led_coop: List[int] = [0] * num_sets
        self._led_bip: List[int] = [0] * num_sets
        if self.config.safe_mode:
            # Shadow the class method with the guarded path so the
            # default configuration pays zero overhead per access.
            self.access = self._guarded_access  # type: ignore[method-assign]
            # The batched fast path would bypass the guard; force the
            # simulator back onto the scalar (guarded) loop.
            self.access_batch = None  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        """Service one LLC access (Figure 4's controller flow)."""
        set_index, tag = self.mapper.split(address)
        stats = self.stats
        stats.accesses += 1
        way = self._lookup[set_index].get(tag << 1)
        if way is not None:
            stats.hits += 1
            stats.local_hits += 1
            if self.tracer.enabled:
                self._led_hits[set_index] += 1
                if self._mode[set_index] == _MODE_BIP:
                    self._led_bip[set_index] += 1
            monitor = self.monitors[set_index]
            monitor.record_local_hit(self.rng)
            if is_write:
                self._dirty[set_index][way] = True
            order = self._order[set_index]
            order.remove(way)
            order.append(way)
            self._maybe_post_giver(set_index, monitor)
            return AccessKind.LOCAL_HIT
        return self._access_miss(set_index, tag, is_write)

    def _access_miss(self, set_index: int, tag: int, is_write: bool) -> AccessKind:
        """Miss half of the controller flow (after the local-hit probe).

        Split out of :meth:`access` so :meth:`access_batch` can inline
        the hot local-hit path and fall into exactly this code on a miss.
        """
        stats = self.stats
        probed_coop = False
        if self._coupled_role[set_index] == _TAKER:
            giver = self.association.partner_of(set_index)
            probed_coop = True
            coop_way = self._lookup[giver].get((tag << 1) | 1)
            if coop_way is not None:
                stats.hits += 1
                stats.cooperative_hits += 1
                tracer = self.tracer
                if tracer.enabled:
                    # Credit the taker: its access was saved.  The hit
                    # is spatial, never temporal, even under BIP.
                    self._led_hits[set_index] += 1
                    self._led_coop[set_index] += 1
                    tracer.emit(CoopHit(
                        access=stats.accesses,
                        set_index=set_index,
                        global_access=self._access_base + stats.accesses,
                        giver=giver,
                    ))
                if is_write:
                    self._dirty[giver][coop_way] = True
                order = self._order[giver]
                order.remove(coop_way)
                order.append(coop_way)
                return AccessKind.COOP_HIT
        stats.misses += 1
        if probed_coop:
            stats.misses_double_probe += 1
        else:
            stats.misses_single_probe += 1
        monitor = self.monitors[set_index]
        signature = self._hash(tag)
        # Inlined SetMonitor.probe_shadow (this is the hottest miss-path
        # call): invalidate on hit, pulse both saturating counters.
        shadow = monitor.shadow
        if signature in shadow._members:
            shadow._members.discard(signature)
            shadow._order.remove(signature)
            counter = monitor.sc_s
            if counter._value < counter.max_value:
                counter._value += 1
            counter = monitor.sc_t
            if counter._value < counter.max_value:
                counter._value += 1
            stats.shadow_hits += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(ShadowHit(
                    access=stats.accesses,
                    set_index=set_index,
                    global_access=self._access_base + stats.accesses,
                    signature=signature,
                ))
        self._fill(set_index, tag, is_write)
        if monitor.wants_policy_swap:
            if self.config.enable_temporal and not self._in_safe_mode[set_index]:
                self._mode[set_index] ^= 1
                stats.policy_swaps += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.emit(PolicySwap(
                        access=stats.accesses,
                        set_index=set_index,
                        global_access=self._access_base + stats.accesses,
                        mode=self.policy_mode_of(set_index),
                        hits=stats.hits,
                    ))
            monitor.acknowledge_policy_swap()
        self._maybe_post_giver(set_index, monitor)
        return AccessKind.MISS_COOP if probed_coop else AccessKind.MISS

    def access_batch(
        self,
        addresses,
        set_indices,
        tags,
        writes,
        start: int,
        stop: int,
    ) -> None:
        """Process accesses ``[start, stop)`` from precomputed arrays.

        Inlines the local-hit path (recency promotion, SC_T/SC_S
        updates via the LFSR jump table, giver posting) and defers every
        miss to :meth:`_access_miss`, so final state and statistics are
        identical to the scalar loop.  Locally accumulated counters are
        flushed into :attr:`stats` before each miss, keeping any
        mid-run reader exact.  With a tracer attached, falls back to
        the scalar path so per-event ``stats.accesses`` stays exact.
        """
        if self.tracer.enabled:
            access = self.access
            if writes is None:
                for n in range(start, stop):
                    access(addresses[n])
            else:
                for n in range(start, stop):
                    access(addresses[n], writes[n])
            return
        config = self.config
        stats = self.stats
        lookup = self._lookup
        orders = self._order
        dirty_rows = self._dirty
        monitors = self.monitors
        roles = self._coupled_role
        safe = self._in_safe_mode
        heap_offer = self.heap.offer
        rng = self.rng
        miss = self._access_miss
        spatial = config.enable_spatial
        giver_bit = 1 << (config.counter_bits - 1)
        ratio_bits = config.spatial_ratio_bits
        if ratio_bits > 0:
            jump_vals, jump_states = Lfsr.jump_table(ratio_bits)
        else:
            jump_vals = jump_states = None
        if config.bip_throttle_bits > 0:
            # Misses decide BIP throttling through next_bits(); having
            # the table ready makes that a pair of list lookups too.
            Lfsr.jump_table(config.bip_throttle_bits)
        has_writes = writes is not None
        acc = hits = 0
        for n in range(start, stop):
            set_index = set_indices[n]
            tag = tags[n]
            way = lookup[set_index].get(tag << 1)
            if way is None:
                stats.accesses += acc + 1
                stats.hits += hits
                stats.local_hits += hits
                acc = hits = 0
                miss(set_index, tag, has_writes and bool(writes[n]))
                continue
            acc += 1
            hits += 1
            monitor = monitors[set_index]
            # Inlined SetMonitor.record_local_hit: SC_T -1 always,
            # SC_S -1 once per 2**ratio_bits hits (LFSR-decided).
            sc_t = monitor.sc_t
            value = sc_t._value
            if value:
                sc_t._value = value - 1
            if jump_states is None:
                spatial_decrement = True
            else:
                state = rng._state
                rng._state = jump_states[state]
                spatial_decrement = not jump_vals[state]
            sc_s = monitor.sc_s
            if spatial_decrement:
                value = sc_s._value
                if value:
                    sc_s._value = value - 1
            if has_writes and writes[n]:
                dirty_rows[set_index][way] = True
            order = orders[set_index]
            order.remove(way)
            order.append(way)
            # Inlined _maybe_post_giver for the hit path.
            if spatial and roles[set_index] == 0 and not safe[set_index]:
                value = sc_s._value
                if value < giver_bit:
                    heap_offer(set_index, value)
        stats.accesses += acc
        stats.hits += hits
        stats.local_hits += hits

    # ------------------------------------------------------------------
    # Fill / spill machinery
    # ------------------------------------------------------------------

    def _fill(self, set_index: int, tag: int, is_write: bool) -> None:
        free = self._free[set_index]
        if free:
            way = free.pop()
        else:
            way = self._order[set_index][0]
            self._evict_for_fill(set_index, way)
        self._install(set_index, way, tag << 1, is_write)

    def _evict_for_fill(self, set_index: int, way: int) -> None:
        """Evict the replacement victim of ``set_index`` before a fill."""
        key = self._way_key[set_index][way]
        dirty = self._dirty[set_index][way]
        self._remove(set_index, way)
        if key & 1:
            # This set is a giver evicting a cooperatively cached block
            # owned by its coupled taker.
            self._drop_cooperative(set_index, key >> 1, dirty)
            return
        victim_tag = key >> 1
        monitor = self.monitors[set_index]
        if (
            self.config.enable_spatial
            and self._coupled_role[set_index] == _UNCOUPLED
            and not self._in_safe_mode[set_index]
            and monitor.is_taker
        ):
            # "When an uncoupled taker set needs to evict a block, it
            # first sends a coupling request to the HW heap" (§4.5).
            self._try_couple(set_index)
        if self._coupled_role[set_index] == _TAKER and not monitor.is_giver:
            giver = self.association.partner_of(set_index)
            if self._receiving_allowed(giver):
                self._spill(set_index, giver, victim_tag, dirty)
                return
            self.stats.spill_rejects += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.emit(SpillReject(
                    access=self.stats.accesses,
                    set_index=set_index,
                    global_access=self._access_base + self.stats.accesses,
                    giver=giver,
                    tag=victim_tag,
                ))
        self._evict_off_chip(set_index, victim_tag, dirty)

    def _receiving_allowed(self, giver: int) -> bool:
        """Receiving control (§4.6): the giver must still be unsaturated."""
        if not self.config.receiving_control:
            return True
        return self.monitors[giver].is_giver

    def _drop_cooperative(self, giver: int, victim_tag: int, dirty: bool) -> None:
        """A giver evicted one of its taker's blocks off-chip."""
        taker = self.association.partner_of(giver)
        if dirty:
            self.stats.writebacks += 1
        # The block leaves the chip: file it in its *owner's* shadow set
        # so the taker's capacity demand keeps being measured.
        self.monitors[taker].record_victim(
            self._hash(victim_tag), self._shadow_insert_at_mru(taker)
        )
        self._cc_count[giver] -= 1
        if self._cc_count[giver] == 0:
            self._decouple(taker, giver)

    def _spill(self, taker: int, giver: int, tag: int, dirty: bool) -> None:
        """Displace a taker victim into the giver (inter-set caching)."""
        self.stats.spills += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Spill(
                access=self.stats.accesses,
                set_index=taker,
                global_access=self._access_base + self.stats.accesses,
                giver=giver,
                tag=tag,
                dirty=dirty,
            ))
        free = self._free[giver]
        if free:
            way = free.pop()
        else:
            way = self._order[giver][0]
            victim_key = self._way_key[giver][way]
            victim_dirty = self._dirty[giver][way]
            self._remove(giver, way)
            if victim_key & 1:
                # Replacing one of the taker's blocks with another; no
                # decouple check, the insert below restores the count.
                if victim_dirty:
                    self.stats.writebacks += 1
                self.monitors[taker].record_victim(
                    self._hash(victim_key >> 1),
                    self._shadow_insert_at_mru(taker),
                )
                self._cc_count[giver] -= 1
            else:
                self._evict_off_chip(giver, victim_key >> 1, victim_dirty)
        self._install(giver, way, (tag << 1) | 1, dirty)
        self._cc_count[giver] += 1

    def _install(self, set_index: int, way: int, key: int, dirty: bool) -> None:
        """Place a block and rank it per the set's current policy mode."""
        self._lookup[set_index][key] = way
        self._way_key[set_index][way] = key
        self._dirty[set_index][way] = dirty
        order = self._order[set_index]
        if self._insert_at_mru(set_index):
            order.append(way)
        else:
            order.insert(0, way)

    def _insert_at_mru(self, set_index: int) -> bool:
        if self._mode[set_index] == _MODE_LRU:
            return True
        return self._throttle_mru()

    def _shadow_insert_at_mru(self, set_index: int) -> bool:
        """Insertion rank in the shadow set (opposite policy, §4.3)."""
        shadow_mode = self._mode[set_index]
        if self.config.invert_shadow_policy:
            shadow_mode ^= 1
        if shadow_mode == _MODE_LRU:
            return True
        return self._throttle_mru()

    def _throttle_mru(self) -> bool:
        """BIP's 1-in-2**throttle MRU decision, jump-table accelerated.

        Identical output stream to ``rng.one_in(bits)`` — the table is
        an exact one-shot encoding of ``bits`` LFSR steps.
        """
        bits = self.config.bip_throttle_bits
        if bits <= 0:
            return True
        table = Lfsr._JUMP_TABLES.get(bits)
        if table is None:
            return self.rng.one_in(bits)
        rng = self.rng
        state = rng._state
        rng._state = table[1][state]
        return not table[0][state]

    def _remove(self, set_index: int, way: int) -> None:
        key = self._way_key[set_index][way]
        del self._lookup[set_index][key]
        self._way_key[set_index][way] = None
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Eviction(
                access=self.stats.accesses,
                set_index=set_index,
                global_access=self._access_base + self.stats.accesses,
                tag=key >> 1,
                dirty=self._dirty[set_index][way],
                cooperative=bool(key & 1),
            ))
        self._dirty[set_index][way] = False
        self._order[set_index].remove(way)
        self.stats.evictions += 1

    def _evict_off_chip(self, set_index: int, victim_tag: int, dirty: bool) -> None:
        """A local block leaves the chip: write back + shadow capture."""
        if dirty:
            self.stats.writebacks += 1
        self.monitors[set_index].record_victim(
            self._hash(victim_tag), self._shadow_insert_at_mru(set_index)
        )

    # ------------------------------------------------------------------
    # Coupling management
    # ------------------------------------------------------------------

    def _maybe_post_giver(self, set_index: int, monitor: SetMonitor) -> None:
        if not self.config.enable_spatial:
            return
        if (
            self._coupled_role[set_index] == _UNCOUPLED
            and not self._in_safe_mode[set_index]
            and monitor.is_giver
        ):
            self.heap.offer(set_index, monitor.saturation)

    def _try_couple(self, taker: int) -> Optional[int]:
        def _valid(candidate: int) -> bool:
            # The bounds check tolerates glitched heap slots naming
            # nonexistent sets — lazy validation drops them as stale.
            return (
                isinstance(candidate, int)
                and 0 <= candidate < self.geometry.num_sets
                and candidate != taker
                and not self._in_safe_mode[candidate]
                and self._coupled_role[candidate] == _UNCOUPLED
                and self.monitors[candidate].is_giver
            )

        giver = self.heap.pop_best(_valid)
        if giver is None:
            return None
        self.association.couple(taker, giver)
        self._coupled_role[taker] = _TAKER
        self._coupled_role[giver] = _GIVER
        self.heap.remove(taker)
        self.stats.couplings += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(Coupling(
                access=self.stats.accesses,
                set_index=taker,
                global_access=self._access_base + self.stats.accesses,
                giver=giver,
            ))
        return giver

    def _decouple(self, taker: int, giver: int) -> None:
        self.association.decouple(taker, giver)
        self._coupled_role[taker] = _UNCOUPLED
        self._coupled_role[giver] = _UNCOUPLED
        self.stats.decouplings += 1
        tracer = self.tracer
        if tracer.enabled:
            # The pair dissolves when the giver drains its last
            # cooperative block.  If the giver still qualifies as a
            # giver the taker simply stopped re-referencing its spilled
            # blocks; otherwise the giver's own demand recovered,
            # receiving control cut the inflow, and the drain follows
            # from that role change.
            reason = (
                "giver_drained" if self.monitors[giver].is_giver
                else "role_change"
            )
            tracer.emit(Decoupling(
                access=self.stats.accesses,
                set_index=taker,
                global_access=self._access_base + self.stats.accesses,
                giver=giver,
                reason=reason,
            ))

    # ------------------------------------------------------------------
    # Safe mode: detect corruption, repair, degrade to per-set LRU
    # ------------------------------------------------------------------

    def _guarded_access(self, address: int, is_write: bool = False) -> AccessKind:
        """Access path installed when ``config.safe_mode`` is set.

        Wraps the normal controller flow; a recoverable exception (the
        symptom of corrupted state) triggers :meth:`_heal`, which
        repairs every inconsistent set, and the access is retried on the
        now-consistent structures.  Periodically (every
        ``safe_mode_check_interval`` accesses) the full invariant sweep
        runs so silent corruption — a glitched association entry that
        still *looks* like a pairing — is bounded in lifetime.
        """
        stats = self.stats
        before = (
            stats.accesses, stats.hits, stats.misses,
            stats.misses_single_probe, stats.misses_double_probe,
            stats.local_hits, stats.cooperative_hits,
        )
        try:
            kind = StemCache.access(self, address, is_write)
        except _RECOVERABLE as exc:
            # Rewind the primary access counters so the retried access
            # is not double-counted (side counters stay best-effort).
            (stats.accesses, stats.hits, stats.misses,
             stats.misses_single_probe, stats.misses_double_probe,
             stats.local_hits, stats.cooperative_hits) = before
            self._heal(f"{type(exc).__name__}: {exc}")
            try:
                kind = StemCache.access(self, address, is_write)
            except _RECOVERABLE as retry_exc:
                # Healing restores full consistency, so a second failure
                # should be impossible; repair again and charge a miss.
                self._heal(f"retry: {type(retry_exc).__name__}: {retry_exc}")
                stats.accesses += 1
                stats.misses += 1
                stats.misses_single_probe += 1
                kind = AccessKind.MISS
        interval = self.config.safe_mode_check_interval
        if interval and stats.accesses % interval == 0:
            try:
                self.check_invariants()
            except InvariantViolation as exc:
                self._heal(str(exc))
        return kind

    def _heal(self, reason: str) -> None:
        """Repair every structurally inconsistent set.

        The association relation is repaired first (out-of-range or
        asymmetric entries reset to identity), then each set is
        validated; every suspect — and its partner, which holds or owns
        the pair's cooperative blocks — is put into safe mode.
        """
        suspects = set(self.association.repair())
        num_sets = self.geometry.num_sets
        for set_index in range(num_sets):
            if not self._set_consistent(set_index):
                suspects.add(set_index)
        for set_index in list(suspects):
            partner = self.association.raw_entry(set_index)
            if (
                isinstance(partner, int)
                and 0 <= partner < num_sets
                and partner != set_index
            ):
                suspects.add(partner)
        for set_index in sorted(suspects):
            self._enter_safe_mode(set_index, reason)

    def _set_consistent(self, set_index: int) -> bool:
        """Light structural validation of one set (never raises)."""
        assoc = self.geometry.associativity
        table = self._lookup[set_index]
        if len(table) + len(self._free[set_index]) != assoc:
            return False
        for key, way in table.items():
            if not isinstance(way, int) or not 0 <= way < assoc:
                return False
            if self._way_key[set_index][way] != key:
                return False
        if sorted(self._order[set_index]) != sorted(table.values()):
            return False
        cc_blocks = sum(1 for key in table if key & 1)
        role = self._coupled_role[set_index]
        coupled = self.association.is_coupled(set_index)
        if role == _GIVER:
            return (
                coupled
                and cc_blocks == self._cc_count[set_index]
                and cc_blocks > 0
            )
        if cc_blocks or self._cc_count[set_index]:
            return False
        if role == _TAKER:
            partner = self.association.partner_of(set_index)
            return partner is not None and self._coupled_role[partner] == _GIVER
        return not coupled

    def _enter_safe_mode(self, set_index: int, reason: str) -> None:
        """Dissolve any pairing, rebuild the set, pin it to plain LRU."""
        partner = self.association.raw_entry(set_index)
        if partner != set_index:
            self.association.force_entry(set_index, set_index)
            if (
                isinstance(partner, int)
                and 0 <= partner < self.geometry.num_sets
                and self.association.raw_entry(partner) == set_index
            ):
                self.association.force_entry(partner, partner)
                # The dissolution is an event-stream fact the ledger
                # must see, but not a normal decoupling: the stats
                # counter stays untouched (only `_decouple` mirrors
                # it), and only the first of the pair's two
                # _enter_safe_mode calls emits (the second finds the
                # association already dissolved above).
                tracer = self.tracer
                if tracer.enabled:
                    role = self._coupled_role[set_index]
                    if role == _TAKER:
                        pair = (set_index, partner)
                    elif role == _GIVER:
                        pair = (partner, set_index)
                    else:
                        pair = None  # glitched pairing with no roles
                    if pair is not None:
                        tracer.emit(Decoupling(
                            access=self.stats.accesses,
                            set_index=pair[0],
                            global_access=(
                                self._access_base + self.stats.accesses
                            ),
                            giver=pair[1],
                            reason="safe_mode",
                        ))
        self._coupled_role[set_index] = _UNCOUPLED
        self._rebuild_set(set_index)
        self.monitors[set_index].reset()
        self._mode[set_index] = _MODE_LRU
        self.heap.remove(set_index)
        self._in_safe_mode[set_index] = True
        self.stats.safe_mode_entries += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(SafeModeEntry(
                access=self.stats.accesses,
                set_index=set_index,
                global_access=self._access_base + self.stats.accesses,
                reason=reason,
            ))

    def _rebuild_set(self, set_index: int) -> None:
        """Reconstruct a set's derived state from its lookup table.

        The lookup table is the root of truth: cooperative entries are
        dropped (the pairing is gone, so they are orphans), invalid or
        duplicate way mappings are discarded, and the recency order is
        preserved where it is still meaningful.
        """
        assoc = self.geometry.associativity
        table = self._lookup[set_index]
        old_dirty = self._dirty[set_index]
        keep: Dict[int, int] = {}  # way -> key
        for key in sorted(table):
            way = table[key]
            if not isinstance(way, int) or not 0 <= way < assoc:
                continue
            if key & 1:
                # Orphaned cooperative block leaving the chip.
                self.stats.evictions += 1
                if old_dirty[way]:
                    self.stats.writebacks += 1
                continue
            if way in keep:
                continue
            keep[way] = key
        table.clear()
        way_key: List[Optional[int]] = [None] * assoc
        dirty = [False] * assoc
        for way, key in keep.items():
            table[key] = way
            way_key[way] = key
            dirty[way] = bool(old_dirty[way])
        self._way_key[set_index] = way_key
        self._dirty[set_index] = dirty
        self._free[set_index] = [
            way for way in range(assoc - 1, -1, -1) if way not in keep
        ]
        order = [
            way for way in dict.fromkeys(self._order[set_index])
            if way in keep
        ]
        order.extend(way for way in sorted(keep) if way not in order)
        self._order[set_index] = order
        self._cc_count[set_index] = 0

    def safe_mode_sets(self) -> List[int]:
        """Indices of sets currently degraded to plain LRU."""
        return [
            set_index
            for set_index, flagged in enumerate(self._in_safe_mode)
            if flagged
        ]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def policy_mode_of(self, set_index: int) -> str:
        """'LRU' or 'BIP' — the set's current temporal policy."""
        return "LRU" if self._mode[set_index] == _MODE_LRU else "BIP"

    def role_of(self, set_index: int) -> str:
        """Coupling role: 'uncoupled', 'taker' or 'giver'."""
        return ("uncoupled", "taker", "giver")[self._coupled_role[set_index]]

    def resident_blocks(self, set_index: int) -> List[BlockView]:
        """Views of the valid blocks in ``set_index``."""
        views = []
        for key, way in sorted(self._lookup[set_index].items()):
            views.append(
                BlockView(
                    set_index=set_index,
                    way=way,
                    tag=key >> 1,
                    dirty=self._dirty[set_index][way],
                    cooperative=bool(key & 1),
                )
            )
        return views

    def shadow_entries(self, set_index: int) -> List[ShadowView]:
        """Views of the valid shadow signatures of ``set_index``."""
        shadow = self.monitors[set_index].shadow
        return [
            ShadowView(set_index=set_index, way=way, hashed_tag=signature)
            for way, signature in enumerate(shadow.entries())
        ]

    @property
    def global_accesses(self) -> int:
        """Lifetime access count; reset_stats() does not rewind it."""
        return self._access_base + self.stats.accesses

    def metrics_gauges(self) -> Dict[str, float]:
        """Instantaneous controller state for the metrics registry.

        Sampled at window boundaries only (never from the access path):
        occupancy, the SCDM's SC_S/SC_T saturation averages, the
        taker/giver census, the candidate-giver heap depth, the live
        coupling population and the safe-mode set count.
        """
        monitors = self.monitors
        num_sets = len(monitors)
        capacity = num_sets * self.geometry.associativity
        filled = sum(len(table) for table in self._lookup)
        sc_s_total = sc_t_total = takers = givers = 0
        for monitor in monitors:
            sc_s_total += monitor.sc_s.value
            sc_t_total += monitor.sc_t.value
            if monitor.is_taker:
                takers += 1
            if monitor.is_giver:
                givers += 1
        counter_max = monitors[0].sc_s.max_value or 1
        coupled_pairs = sum(
            1 for role in self._coupled_role if role == _TAKER
        )
        return {
            "occupancy_fraction": filled / capacity,
            "sc_s_saturation": sc_s_total / (num_sets * counter_max),
            "sc_t_saturation": sc_t_total / (num_sets * counter_max),
            "taker_fraction": takers / num_sets,
            "giver_fraction": givers / num_sets,
            "giver_heap_depth": float(len(self.heap)),
            "coupled_pairs": float(coupled_pairs),
            "safe_mode_sets": float(sum(self._in_safe_mode)),
        }

    def metrics_per_set(self) -> Dict[str, List[int]]:
        """Per-set rows for the metrics registry (heatmap data)."""
        return {"occupancy": [len(table) for table in self._lookup]}

    def ledger_counters(self) -> Dict[str, List[int]]:
        """Per-set attribution counters for the capacity-flow ledger.

        Maintained only while a tracer is attached (all zeros
        otherwise) and zeroed by :meth:`reset_stats`, so they cover
        exactly the measured window — matching ``stats``: the per-set
        hits sum to ``stats.hits``, the cooperative hits to
        ``stats.cooperative_hits``.  ``swapped_policy_hits`` counts
        local hits taken while the set's insertion policy was BIP —
        the temporal component :mod:`repro.obs.explain` reports.
        """
        return {
            "hits": list(self._led_hits),
            "cooperative_hits": list(self._led_coop),
            "swapped_policy_hits": list(self._led_bip),
        }

    def reset_stats(self) -> None:
        """Zero statistics (e.g. after warm-up).

        The lifetime clock behind event ``global_access`` stamps keeps
        running: the zeroed window counters fold into ``_access_base``.
        """
        self._access_base += self.stats.accesses
        self.stats = CacheStats()
        num_sets = self.geometry.num_sets
        self._led_hits = [0] * num_sets
        self._led_coop = [0] * num_sets
        self._led_bip = [0] * num_sets

    def check_invariants(self) -> None:
        """Verify structural consistency; used by property tests.

        Raises :class:`InvariantViolation` on the first inconsistency —
        never ``assert`` — so the checks work under ``python -O`` and
        safe mode can catch and repair instead of crashing.
        """
        self.association.check_invariants()
        for set_index in range(self.geometry.num_sets):
            table = self._lookup[set_index]
            cc_blocks = sum(1 for key in table if key & 1)
            role = self._coupled_role[set_index]
            if role == _GIVER:
                if cc_blocks != self._cc_count[set_index]:
                    raise InvariantViolation(
                        f"set {set_index}: cc bookkeeping mismatch "
                        f"({cc_blocks} blocks vs count "
                        f"{self._cc_count[set_index]})"
                    )
                if not self.association.is_coupled(set_index):
                    raise InvariantViolation(
                        f"set {set_index}: giver role without a pairing"
                    )
                if self._cc_count[set_index] <= 0:
                    raise InvariantViolation(
                        f"set {set_index}: coupled giver with no cc blocks"
                    )
            elif cc_blocks != 0:
                raise InvariantViolation(
                    f"set {set_index}: cooperative blocks in a non-giver"
                )
            if role == _TAKER:
                partner = self.association.partner_of(set_index)
                if partner is None:
                    raise InvariantViolation(
                        f"set {set_index}: taker role without a pairing"
                    )
                if self._coupled_role[partner] != _GIVER:
                    raise InvariantViolation(
                        f"set {set_index}: partner {partner} is not a giver"
                    )
            occupancy = len(table) + len(self._free[set_index])
            if occupancy != self.geometry.associativity:
                raise InvariantViolation(
                    f"set {set_index}: occupancy {occupancy} != "
                    f"associativity {self.geometry.associativity}"
                )
            if sorted(self._order[set_index]) != sorted(table.values()):
                raise InvariantViolation(
                    f"set {set_index}: recency order disagrees with the "
                    "lookup table"
                )
            if len(self.monitors[set_index].shadow) > (
                self.geometry.associativity
            ):
                raise InvariantViolation(
                    f"set {set_index}: shadow set exceeds associativity"
                )
