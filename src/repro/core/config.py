"""STEM configuration knobs, defaulted to the paper's Table 3 values."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class StemConfig:
    """Tunable parameters of the STEM LLC.

    Defaults reproduce Table 3: 4-bit saturating counters (``k``), a
    1/2**3 spatial decrement ratio (``n``), 10-bit shadow-tag hashes
    (``m``) and a small hardware heap of candidate givers.  The two
    boolean flags exist for the ablation benchmarks called out in
    DESIGN.md §6:

    * ``receiving_control`` — STEM's gate that lets a giver refuse
      spills once it stops looking like a giver (Section 4.6).  Turning
      it off yields SBC-style unconditional receiving.
    * ``invert_shadow_policy`` — the shadow set runs the *opposite*
      replacement policy of its LLC set (Section 4.3).  Turning it off
      makes the shadow mirror the set, removing the temporal signal.
    * ``enable_spatial`` / ``enable_temporal`` — disable one of STEM's
      two management dimensions entirely.  Spatial-only STEM keeps the
      coupling machinery but never swaps policies; temporal-only STEM
      duels LRU/BIP per set but never couples.  Together they quantify
      the paper's thesis that *both* dimensions are required.
    * ``safe_mode`` — graceful degradation under state corruption (the
      resilience layer's contract): structural inconsistencies detected
      on the access path or by the periodic invariant sweep trigger a
      repair that decouples the affected pair, resets its SCDM state and
      pins the set to plain LRU, instead of crashing the run.
    * ``safe_mode_check_interval`` — accesses between periodic full
      invariant sweeps while safe mode is active (0 disables the sweep;
      corruption is then only caught when it breaks the access path).
    """

    counter_bits: int = 4
    spatial_ratio_bits: int = 3
    shadow_tag_bits: int = 10
    heap_capacity: int = 16
    bip_throttle_bits: int = 5
    receiving_control: bool = True
    invert_shadow_policy: bool = True
    enable_spatial: bool = True
    enable_temporal: bool = True
    hash_seed: int = 0xACE1
    safe_mode: bool = False
    safe_mode_check_interval: int = 2048

    def __post_init__(self) -> None:
        if self.counter_bits <= 0:
            raise ConfigError(
                f"counter_bits must be positive, got {self.counter_bits}"
            )
        if self.spatial_ratio_bits < 0:
            raise ConfigError(
                f"spatial_ratio_bits must be >= 0, got {self.spatial_ratio_bits}"
            )
        if self.shadow_tag_bits <= 0:
            raise ConfigError(
                f"shadow_tag_bits must be positive, got {self.shadow_tag_bits}"
            )
        if self.heap_capacity <= 0:
            raise ConfigError(
                f"heap_capacity must be positive, got {self.heap_capacity}"
            )
        if self.bip_throttle_bits < 0:
            raise ConfigError(
                f"bip_throttle_bits must be >= 0, got {self.bip_throttle_bits}"
            )
        if self.safe_mode_check_interval < 0:
            raise ConfigError(
                "safe_mode_check_interval must be >= 0, got "
                f"{self.safe_mode_check_interval}"
            )


#: The exact configuration evaluated in the paper.
PAPER_STEM_CONFIG = StemConfig()
