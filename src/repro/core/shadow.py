"""Shadow sets: the virtual extra capacity behind STEM's monitor.

A shadow set (Section 4.3) has the same associativity as its LLC set
and stores ``m``-bit hash signatures of the tags of blocks the LLC set
evicted.  Three operations define it:

1. when the LLC set evicts a local block off-chip, the victim tag's
   hash is inserted, ranked by the shadow set's *own* replacement
   policy (the opposite of the LLC set's, so the eviction stream is
   filtered through the "other" temporal lens);
2. the shadow set replaces among its own entries independently;
3. when an access misses in the LLC set, the shadow set is probed; a
   valid matching signature is a *shadow hit*: the entry is invalidated
   (signatures stay strictly exclusive with resident blocks) and the
   saturating counters are pulsed.

Because signatures are hashes, two different tags can alias; the width
``m`` (10 bits in Table 3) keeps that probability near 1/1024, which
the monitor tolerates by design.
"""

from __future__ import annotations

from typing import List, Set

from repro.common.errors import ConfigError


class ShadowSet:
    """An associativity-bounded, recency-ranked set of tag signatures."""

    __slots__ = ("capacity", "_order", "_members")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._order: List[int] = []  # index 0 = LRU ... end = MRU
        self._members: Set[int] = set()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, signature: int) -> bool:
        return signature in self._members

    def lookup_and_invalidate(self, signature: int) -> bool:
        """Probe for ``signature``; on a hit, remove it (exclusivity)."""
        if signature not in self._members:
            return False
        self._members.discard(signature)
        self._order.remove(signature)
        return True

    def insert(self, signature: int, at_mru: bool) -> None:
        """Insert a victim signature at the MRU or LRU rank position.

        A duplicate signature (hash alias of an earlier victim, or the
        same block bouncing) is re-ranked rather than duplicated.  A
        full shadow set evicts its own LRU entry first.
        """
        if signature in self._members:
            self._order.remove(signature)
        elif len(self._order) >= self.capacity:
            dropped = self._order.pop(0)
            self._members.discard(dropped)
        self._members.add(signature)
        if at_mru:
            self._order.append(signature)
        else:
            self._order.insert(0, signature)

    def entries(self) -> "tuple[int, ...]":
        """LRU-to-MRU signature ordering (for tests)."""
        return tuple(self._order)
