"""STEM — the paper's contribution: spatiotemporal LLC management."""

from repro.core.config import PAPER_STEM_CONFIG, StemConfig
from repro.core.scdm import SetMonitor
from repro.core.shadow import ShadowSet
from repro.core.stem_cache import StemCache

__all__ = [
    "PAPER_STEM_CONFIG",
    "SetMonitor",
    "ShadowSet",
    "StemCache",
    "StemConfig",
]
