"""SCDM — the Set-level Capacity Demand Monitor (Section 4.2, Figure 5).

One :class:`SetMonitor` is attached to each LLC set.  It bundles the
set's shadow set with the two k-bit saturating counters:

* ``SC_S`` (spatial): +1 on every shadow hit, −1 once per 2**n LLC-set
  hits (implemented probabilistically with the controller's LFSR).  A
  *saturated* ``SC_S`` marks the set a **taker** — doubling its capacity
  would recover at least a 1/2**n hit-rate increase.  A zero MSB marks
  it a **giver** — it hits so frequently in its local capacity that it
  can donate space.  ``SC_S`` is reset only at system initialisation.
* ``SC_T`` (temporal): +1 on every shadow hit, −1 on every LLC-set hit.
  Saturation means the shadow set's (opposite) replacement policy is
  outperforming the set's current policy: the controller swaps the
  policies and resets the counter.
"""

from __future__ import annotations

from repro.common.counters import SaturatingCounter
from repro.common.rng import Lfsr
from repro.core.shadow import ShadowSet


class SetMonitor:
    """Shadow set + SC_S + SC_T for one LLC set."""

    __slots__ = ("shadow", "sc_s", "sc_t", "spatial_ratio_bits")

    def __init__(
        self,
        associativity: int,
        counter_bits: int,
        spatial_ratio_bits: int,
    ) -> None:
        self.shadow = ShadowSet(associativity)
        self.sc_s = SaturatingCounter(counter_bits)
        self.sc_t = SaturatingCounter(counter_bits)
        self.spatial_ratio_bits = spatial_ratio_bits

    # ------------------------------------------------------------------
    # Event hooks driven by the STEM controller
    # ------------------------------------------------------------------

    def record_local_hit(self, rng: Lfsr) -> None:
        """A hit in the LLC set: SC_T −1; SC_S −1 once per 2**n hits."""
        self.sc_t.decrement()
        if rng.one_in(self.spatial_ratio_bits):
            self.sc_s.decrement()

    def probe_shadow(self, signature: int) -> bool:
        """Shadow lookup on an LLC-set miss; pulses both counters on hit."""
        if not self.shadow.lookup_and_invalidate(signature):
            return False
        self.sc_s.increment()
        self.sc_t.increment()
        return True

    def record_victim(self, signature: int, at_mru: bool) -> None:
        """An off-chip eviction: file the victim's signature."""
        self.shadow.insert(signature, at_mru)

    def reset(self) -> None:
        """Return the monitor to its power-on state.

        Used by STEM's safe-mode recovery: after detected corruption
        the set's capacity-demand history is untrustworthy, so both
        counters restart at zero and the shadow set is emptied.
        """
        self.sc_s.reset()
        self.sc_t.reset()
        self.shadow = ShadowSet(self.shadow.capacity)

    # ------------------------------------------------------------------
    # Classification read by the controller
    # ------------------------------------------------------------------

    @property
    def is_taker(self) -> bool:
        """Saturated SC_S: extending this set's capacity pays off."""
        return self.sc_s.saturated

    @property
    def is_giver(self) -> bool:
        """Zero MSB: the set hits locally and can donate capacity."""
        return self.sc_s.msb == 0

    @property
    def wants_policy_swap(self) -> bool:
        """Saturated SC_T: the shadow's policy is winning."""
        return self.sc_t.saturated

    def acknowledge_policy_swap(self) -> None:
        """The controller swapped the policies: restart the duel."""
        self.sc_t.reset()

    @property
    def saturation(self) -> int:
        """SC_S value, the heap's ordering key for candidate givers."""
        return self.sc_s.value
