"""Figure 10 — the sensitivity study: Figure 3's sweeps with STEM added.

The claims this experiment must support (Section 5.3):

* omnetpp: STEM tracks the best temporal scheme at small associativity,
  outperforms everything in the moderate range by combining both kinds
  of management, and stays competitive at high associativity;
* ammp: STEM never does materially worse than the best existing scheme
  across the whole range, with clear advantages over DIP/PeLIFO/V-Way
  in the small-associativity band.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figure3 import (
    DEFAULT_ASSOCIATIVITIES,
    SweepResult,
    run as _run_figure3,
)
from repro.sim.config import ExperimentScale, PAPER_SCHEMES
from repro.sim.results import format_series

#: Figure 10 plots every scheme including STEM.
FIGURE10_SCHEMES = PAPER_SCHEMES


def run(
    benchmark: str = "omnetpp",
    associativities: Sequence[int] = DEFAULT_ASSOCIATIVITIES,
    scale: Optional[ExperimentScale] = None,
) -> SweepResult:
    """Sweep associativity for one benchmark, STEM included."""
    return _run_figure3(
        benchmark,
        schemes=FIGURE10_SCHEMES,
        associativities=associativities,
        scale=scale,
    )


def main(
    scale: Optional[ExperimentScale] = None,
    associativities: Sequence[int] = DEFAULT_ASSOCIATIVITIES,
) -> str:
    """Render the two Figure 10 sweeps as MPKI tables."""
    blocks = []
    for benchmark in ("omnetpp", "ammp"):
        result = run(
            benchmark, associativities=associativities, scale=scale
        )
        blocks.append(
            format_series(
                result.mpki,
                result.associativities,
                x_label="scheme\\assoc",
                title=(
                    f"Figure 10 ({benchmark}): MPKI vs associativity "
                    "(with STEM)"
                ),
                precision=2,
            )
        )
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()
