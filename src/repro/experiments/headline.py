"""The headline numbers: geomean improvements over LRU.

The abstract claims STEM improves MPKI / AMAT / CPI over LRU by 21.4%,
13.5% and 6.3%, against DIP (n/a, 10.3%, 4.7%), PeLIFO (n/a, 5.8%,
3.4%), V-Way (n/a, -9.2%, -4.6%) and SBC (n/a, 4.1%, 2.2%).  This
experiment derives the same summary from our evaluation matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.metrics import improvement_over_baseline
from repro.experiments.evaluation import run_evaluation
from repro.sim.config import ExperimentScale, PAPER_SCHEMES

#: The paper's reported geomean improvements over LRU, in percent.
PAPER_IMPROVEMENTS = {
    "STEM": {"mpki": 21.4, "amat": 13.5, "cpi": 6.3},
    "DIP": {"amat": 10.3, "cpi": 4.7},
    "PeLIFO": {"amat": 5.8, "cpi": 3.4},
    "V-Way": {"amat": -9.2, "cpi": -4.6},
    "SBC": {"amat": 4.1, "cpi": 2.2},
}


@dataclass
class HeadlineResult:
    """Geomean percentage improvements over LRU per scheme and metric."""

    improvements: Dict[str, Dict[str, float]]  # scheme -> metric -> %

    def best_scheme(self, metric: str) -> str:
        """The scheme with the largest improvement on ``metric``."""
        return max(
            self.improvements,
            key=lambda scheme: self.improvements[scheme][metric],
        )


def run(scale: Optional[ExperimentScale] = None) -> HeadlineResult:
    """Compute geomean improvements for every non-baseline scheme."""
    matrix = run_evaluation(scale=scale)
    tables = {
        "mpki": matrix.normalized_table(lambda r: r.mpki)["Geomean"],
        "amat": matrix.normalized_table(lambda r: r.amat)["Geomean"],
        "cpi": matrix.normalized_table(lambda r: r.cpi)["Geomean"],
    }
    improvements: Dict[str, Dict[str, float]] = {}
    for scheme in PAPER_SCHEMES:
        if scheme == "LRU":
            continue
        improvements[scheme] = {
            metric: improvement_over_baseline(values[scheme])
            for metric, values in tables.items()
        }
    return HeadlineResult(improvements=improvements)


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render the headline comparison (measured vs paper)."""
    result = run(scale=scale)
    lines = [
        "Headline: geomean improvement over LRU, percent "
        "(measured / paper)",
        f"{'scheme':>8s} {'MPKI':>16s} {'AMAT':>16s} {'CPI':>16s}",
    ]
    for scheme, metrics in result.improvements.items():
        paper = PAPER_IMPROVEMENTS.get(scheme, {})
        cells = []
        for metric in ("mpki", "amat", "cpi"):
            measured = metrics[metric]
            reference = paper.get(metric)
            ref_text = f"{reference:+.1f}" if reference is not None else "  - "
            cells.append(f"{measured:+7.1f} / {ref_text:>6s}")
        lines.append(f"{scheme:>8s} " + " ".join(f"{c:>16s}" for c in cells))
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
