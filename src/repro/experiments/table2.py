"""Table 2 — the 15 benchmarks: class membership and LRU MPKI.

Our workload generators are calibrated so the 16-way LRU MPKI of every
modelled benchmark matches Table 2's measurement, and the classifier
of :mod:`repro.analysis.classification` should recover each
benchmark's class from the trace alone (Figure 6's taxonomy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.classification import classify_trace
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import BENCHMARKS, benchmark_names, make_benchmark_trace


@dataclass
class Table2Row:
    """One benchmark's Table 2 entry plus our measurements."""

    benchmark: str
    paper_class: str
    paper_mpki: float
    measured_mpki: float
    classifier_label: str


def run(
    scale: Optional[ExperimentScale] = None,
    classify: bool = True,
) -> List[Table2Row]:
    """Measure LRU MPKI (and optionally re-classify) every benchmark."""
    scale = scale if scale is not None else ExperimentScale.default()
    rows: List[Table2Row] = []
    for name in benchmark_names():
        spec = BENCHMARKS[name]
        trace = make_benchmark_trace(
            name, num_sets=scale.num_sets, length=scale.trace_length
        )
        cache = make_scheme("LRU", scale.geometry())
        result = run_trace(
            cache, trace, warmup_fraction=scale.warmup_fraction
        )
        label = ""
        if classify:
            label = classify_trace(
                trace,
                num_sets=scale.num_sets,
                associativity=scale.associativity,
            ).label
        rows.append(
            Table2Row(
                benchmark=name,
                paper_class=spec.spec_class,
                paper_mpki=spec.paper_mpki_lru,
                measured_mpki=result.mpki,
                classifier_label=label,
            )
        )
    return rows


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render Table 2: paper vs measured MPKI and class labels."""
    rows = run(scale=scale)
    lines = [
        "Table 2: benchmark classes and MPKI under LRU (paper vs measured)",
        f"{'benchmark':>12s} {'class':>6s} {'paper MPKI':>11s} "
        f"{'measured':>9s} {'classified':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:>12s} {row.paper_class:>6s} "
            f"{row.paper_mpki:>11.3f} {row.measured_mpki:>9.3f} "
            f"{row.classifier_label:>11s}"
        )
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
