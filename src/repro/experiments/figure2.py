"""Figure 2 — the synthetic two-set illustration of spatial vs temporal.

Reproduces the paper's conceptual table: a 2-set, 4-way LLC fed three
interleaved cyclic workloads, with steady-state miss rates for LRU,
DIP (the paper assumes an oracle DIP "with knowledge of the working
sets' patterns", i.e. each set independently runs the better of
LRU/BIP), SBC, and — for the extensional example — STEM, which should
push Example #2 below SBC's 1/3 by combining cooperative capacity with
BIP-style retention.

Expected values from the paper:

=========  =====  ======  =====
example     LRU    DIP     SBC
=========  =====  ======  =====
#1          1/2    1/4      0
#2          1/2    1/4     1/3
#3           1    1/4+1/5    1
=========  =====  ======  =====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cache.basecache import SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.common.rng import Lfsr
from repro.policies.registry import make_policy
from repro.sim.config import make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.synthetic import (
    FIGURE2_WORKING_SETS,
    figure2_expected_miss_rates,
    figure2_trace,
)
from repro.workloads.trace import Trace


def oracle_dip_miss_rate(
    trace: Trace, num_sets: int, ways: int, warmup_fraction: float = 0.5
) -> float:
    """The paper's oracle DIP: per set, the better of LRU and BIP.

    Simulates the full trace under pure LRU and pure BIP and combines
    the per-set minimum of the two miss counts — exactly "DIP with
    knowledge of the working sets' patterns" from Figure 2.
    """
    geometry = CacheGeometry(num_sets=num_sets, associativity=ways)
    mapper = geometry.mapper
    per_set_misses: Dict[str, List[int]] = {}
    measured = 0
    for policy_name in ("lru", "bip"):
        cache = SetAssociativeCache(
            geometry, make_policy(policy_name), rng=Lfsr()
        )
        counts = [0] * num_sets
        warm = int(len(trace.addresses) * warmup_fraction)
        for index, address in enumerate(trace.addresses):
            hit = cache.access(address).is_hit
            if index >= warm and not hit:
                counts[mapper.set_index(address)] += 1
        per_set_misses[policy_name] = counts
        measured = len(trace.addresses) - warm
    best = sum(
        min(lru_count, bip_count)
        for lru_count, bip_count in zip(
            per_set_misses["lru"], per_set_misses["bip"]
        )
    )
    return best / measured


@dataclass
class Figure2Result:
    """Measured and expected miss rates for one example."""

    example: int
    working_sets: "tuple[int, int]"
    measured: Dict[str, float]
    expected: Dict[str, float]


def run(example: int, rounds: int = 4096, ways: int = 4) -> Figure2Result:
    """Simulate one Figure 2 example across the compared schemes."""
    trace = figure2_trace(example, rounds=rounds)
    geometry = CacheGeometry(num_sets=2, associativity=ways)
    measured: Dict[str, float] = {}
    for scheme in ("LRU", "SBC", "STEM"):
        cache = make_scheme(scheme, geometry)
        result = run_trace(cache, trace, warmup_fraction=0.5)
        measured[scheme] = result.miss_rate
    measured["DIP"] = oracle_dip_miss_rate(trace, num_sets=2, ways=ways)
    return Figure2Result(
        example=example,
        working_sets=FIGURE2_WORKING_SETS[example],
        measured=measured,
        expected=figure2_expected_miss_rates(example, ways=ways),
    )


def main(rounds: int = 4096) -> str:
    """Render the Figure 2 table for all three examples."""
    lines = [
        "Figure 2: steady-state miss rates on the 2-set, 4-way synthetic "
        "examples",
        f"{'example':>8s} {'ws':>8s} "
        + "".join(f"{s:>18s}" for s in ("LRU", "DIP", "SBC", "STEM")),
    ]
    for example in sorted(FIGURE2_WORKING_SETS):
        result = run(example, rounds=rounds)
        cells = []
        for scheme in ("LRU", "DIP", "SBC", "STEM"):
            measured = result.measured[scheme]
            expected = result.expected.get(scheme)
            if expected is None:
                cells.append(f"{measured:>11.3f} (----)")
            else:
                cells.append(f"{measured:>11.3f} ({expected:.3f})")
        lines.append(
            f"{result.example:>8d} {str(result.working_sets):>8s} "
            + "".join(f"{c:>18s}" for c in cells)
        )
    lines.append("  (parenthesised values: the paper's analytic miss rates;")
    lines.append("   STEM has no paper value except the #2 bound of 1/6)")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
