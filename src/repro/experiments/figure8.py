"""Figure 8 — normalized AMAT for the 15 benchmarks plus the geomean.

AMAT uses the paper's Section 5.1 latency model, so cooperative schemes
pay for their second tag-store probes (misses in a coupled taker cost
12 cycles of tag traffic, cooperative hits 20 cycles) — which is why
the paper reports AMAT separately from MPKI.  Paper improvements over
LRU: STEM 13.5%, DIP 10.3%, PeLIFO 5.8%, V-Way -9.2%, SBC 4.1%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.evaluation import run_evaluation
from repro.sim.config import ExperimentScale, PAPER_SCHEMES
from repro.sim.results import format_table
from repro.workloads.spec_like import benchmark_names


def run(
    scale: Optional[ExperimentScale] = None,
    schemes: Sequence[str] = PAPER_SCHEMES,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Normalized-AMAT table (workload rows, scheme columns, + geomean)."""
    matrix = run_evaluation(scale=scale, schemes=schemes, benchmarks=benchmarks)
    return matrix.normalized_table(lambda result: result.amat)


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render Figure 8 in the paper's benchmark order."""
    table = run(scale=scale)
    ordered = {
        name: table[name] for name in benchmark_names() if name in table
    }
    if "Geomean" in table:
        ordered["Geomean"] = table["Geomean"]
    text = format_table(
        ordered,
        columns=list(PAPER_SCHEMES),
        title="Figure 8: AMAT normalized to LRU",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
