"""Figure 3 — MPKI vs associativity for omnetpp and ammp (no STEM).

The paper sweeps the LLC associativity from 1 to 32 with the set count
fixed and plots MPKI for LRU, DIP, PeLIFO, V-Way and SBC.  The shapes
to reproduce:

* omnetpp: temporal schemes win at small associativity (few givers to
  pair), spatial schemes take over in the upper-middle range, and all
  schemes converge once sets hold the largest working sets;
* ammp: the spatial schemes dominate at small associativity (half the
  sets need almost nothing) and every scheme converges to LRU once the
  local capacity suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.config import ExperimentScale
from repro.sim.results import format_series
from repro.sim.runner import associativity_sweep
from repro.workloads.spec_like import make_benchmark_trace

#: Schemes plotted in Figure 3 (Figure 10 adds STEM).
FIGURE3_SCHEMES = ("LRU", "DIP", "PeLIFO", "V-Way", "SBC")

#: The paper sweeps 1..32; this condensed grid keeps the same shape.
DEFAULT_ASSOCIATIVITIES = (1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32)


@dataclass
class SweepResult:
    """MPKI curves for one benchmark."""

    benchmark: str
    associativities: List[int]
    mpki: Dict[str, List[float]]  # scheme -> curve


def run(
    benchmark: str = "omnetpp",
    schemes: Sequence[str] = FIGURE3_SCHEMES,
    associativities: Sequence[int] = DEFAULT_ASSOCIATIVITIES,
    scale: Optional[ExperimentScale] = None,
) -> SweepResult:
    """Sweep associativity for one benchmark."""
    scale = scale if scale is not None else ExperimentScale.default()
    trace = make_benchmark_trace(
        benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    curves = associativity_sweep(
        trace, schemes, associativities, scale=scale
    )
    return SweepResult(
        benchmark=benchmark,
        associativities=list(associativities),
        mpki={
            scheme: [result.mpki for result in results]
            for scheme, results in curves.items()
        },
    )


def main(
    scale: Optional[ExperimentScale] = None,
    schemes: Sequence[str] = FIGURE3_SCHEMES,
    associativities: Sequence[int] = DEFAULT_ASSOCIATIVITIES,
) -> str:
    """Render the two Figure 3 sweeps as MPKI tables."""
    blocks = []
    for benchmark in ("omnetpp", "ammp"):
        result = run(
            benchmark,
            schemes=schemes,
            associativities=associativities,
            scale=scale,
        )
        series = {
            scheme: result.mpki[scheme] for scheme in schemes
        }
        blocks.append(
            format_series(
                series,
                result.associativities,
                x_label="scheme\\assoc",
                title=f"Figure 3 ({benchmark}): MPKI vs associativity",
                precision=2,
            )
        )
    text = "\n\n".join(blocks)
    print(text)
    return text


if __name__ == "__main__":
    main()
