"""Figure 9 — normalized CPI for the 15 benchmarks plus the geomean.

CPI comes from the analytic core model (DESIGN.md §7): a fixed base
CPI plus overlap-discounted LLC stall cycles.  Because the base terms
are identical across schemes, normalized CPI compresses the AMAT gaps
exactly as the paper's Figure 9 compresses Figure 8 (paper: STEM 6.3%,
DIP 4.7%, PeLIFO 3.4%, V-Way -4.6%, SBC 2.2% over LRU).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.evaluation import run_evaluation
from repro.sim.config import ExperimentScale, PAPER_SCHEMES
from repro.sim.results import format_table
from repro.workloads.spec_like import benchmark_names


def run(
    scale: Optional[ExperimentScale] = None,
    schemes: Sequence[str] = PAPER_SCHEMES,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Normalized-CPI table (workload rows, scheme columns, + geomean)."""
    matrix = run_evaluation(scale=scale, schemes=schemes, benchmarks=benchmarks)
    return matrix.normalized_table(lambda result: result.cpi)


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render Figure 9 in the paper's benchmark order."""
    table = run(scale=scale)
    ordered = {
        name: table[name] for name in benchmark_names() if name in table
    }
    if "Geomean" in table:
        ordered["Geomean"] = table["Geomean"]
    text = format_table(
        ordered,
        columns=list(PAPER_SCHEMES),
        title="Figure 9: CPI normalized to LRU",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
