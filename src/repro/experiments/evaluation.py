"""Shared evaluation harness behind Figures 7-9 and the headline.

The paper evaluates the 15 benchmarks once under every scheme and then
reads three different metrics off the same runs (MPKI, AMAT, CPI).  We
do the same: :func:`run_evaluation` produces the full
:class:`~repro.sim.results.ResultMatrix`, and each figure module
projects its metric out of it.  The matrix is cached per scale inside
the module so invoking figure7 + figure8 + figure9 in one process costs
one simulation pass.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.sim.config import PAPER_SCHEMES, ExperimentScale
from repro.sim.results import ResultMatrix
from repro.sim.runner import run_benchmarks

_CACHE: Dict[Tuple, ResultMatrix] = {}


def run_evaluation(
    scale: Optional[ExperimentScale] = None,
    schemes: Sequence[str] = PAPER_SCHEMES,
    benchmarks: Optional[Sequence[str]] = None,
    use_cache: bool = True,
) -> ResultMatrix:
    """The 15-benchmark x 6-scheme grid behind Figures 7, 8 and 9."""
    scale = scale if scale is not None else ExperimentScale.default()
    key = (
        scale.num_sets,
        scale.associativity,
        scale.trace_length,
        tuple(schemes),
        tuple(benchmarks) if benchmarks is not None else None,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]
    matrix = run_benchmarks(schemes, benchmarks=benchmarks, scale=scale)
    if use_cache:
        _CACHE[key] = matrix
    return matrix


def clear_cache() -> None:
    """Drop memoised evaluation runs (tests use this)."""
    _CACHE.clear()
