"""Optimality gap: how close each scheme gets to Belady's OPT.

The paper frames every hardware policy as an approximation of
"Belady's optimal algorithm" (Section 2.2).  This extension experiment
makes that framing quantitative: for each benchmark it computes the
*global* OPT lower bound (fully-associative MIN over the LLC's total
capacity — a bound no placement/replacement scheme of that capacity
can beat) and reports each scheme's miss count as a multiple of it.
A ratio of 1.0 would be perfect; the gap that remains after STEM shows
how much headroom set-granular hardware still leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.policies.belady import opt_misses
from repro.sim.config import ExperimentScale, PAPER_SCHEMES, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace


@dataclass
class OptGapResult:
    """Miss counts relative to the global OPT bound."""

    benchmarks: Sequence[str]
    schemes: Sequence[str]
    opt_misses: Dict[str, int]
    scheme_misses: Dict[str, Dict[str, int]]

    def gap(self, benchmark: str, scheme: str) -> float:
        """misses(scheme) / misses(OPT); >= 1.0 by construction."""
        bound = self.opt_misses[benchmark]
        if bound == 0:
            return 1.0
        return self.scheme_misses[benchmark][scheme] / bound


def run(
    benchmarks: Sequence[str] = ("omnetpp", "mcf", "gobmk"),
    schemes: Sequence[str] = PAPER_SCHEMES,
    scale: Optional[ExperimentScale] = None,
) -> OptGapResult:
    """Measure per-scheme optimality gaps on whole traces.

    OPT is evaluated over the full trace (no warm-up discard) for a
    clean bound, so the schemes are measured the same way here.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    opt: Dict[str, int] = {}
    misses: Dict[str, Dict[str, int]] = {}
    capacity = scale.geometry().num_lines
    for name in benchmarks:
        trace = make_benchmark_trace(
            name, num_sets=scale.num_sets, length=scale.trace_length
        )
        blocks = [
            scale.geometry().mapper.block_address(a) for a in trace.addresses
        ]
        opt[name] = opt_misses(blocks, capacity)
        misses[name] = {}
        for scheme in schemes:
            cache = make_scheme(scheme, scale.geometry())
            result = run_trace(cache, trace, warmup_fraction=0.0)
            misses[name][result.scheme] = result.stats.misses
    return OptGapResult(
        benchmarks=list(benchmarks),
        schemes=list(schemes),
        opt_misses=opt,
        scheme_misses=misses,
    )


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render the optimality-gap table."""
    result = run(scale=scale)
    lines = [
        "Optimality gap: misses as a multiple of fully-associative OPT",
        f"{'benchmark':>12s} " + "".join(
            f"{scheme:>9s}" for scheme in result.schemes
        ),
    ]
    for name in result.benchmarks:
        cells = "".join(
            f"{result.gap(name, scheme):>9.2f}" for scheme in result.schemes
        )
        lines.append(f"{name:>12s} {cells}")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
