"""Table 3 — hardware storage analysis: STEM costs 3.1% over LRU.

Prices the monitor store (shadow sets + saturating counters), CC bits,
association table and giver heap for the paper's exact configuration
(2 MB, 16-way, 2048 sets, 44-bit addresses, 10-bit shadow tags, 4-bit
counters) and, for context, the corresponding budgets of the competing
schemes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.overhead import (
    StorageReport,
    dip_overhead,
    paper_table3_geometry,
    pelifo_overhead,
    sbc_overhead,
    stem_overhead,
    vway_overhead,
)
from repro.cache.geometry import CacheGeometry

#: The paper's bottom line for STEM's storage cost.
PAPER_STEM_OVERHEAD_PERCENT = 3.1


def run(geometry: Optional[CacheGeometry] = None) -> Dict[str, StorageReport]:
    """Storage reports for every scheme at the Table 3 configuration."""
    geometry = geometry if geometry is not None else paper_table3_geometry()
    return {
        "STEM": stem_overhead(geometry),
        "DIP": dip_overhead(geometry),
        "PeLIFO": pelifo_overhead(geometry),
        "SBC": sbc_overhead(geometry),
        "V-Way": vway_overhead(geometry),
    }


def main(geometry: Optional[CacheGeometry] = None) -> str:
    """Render Table 3 with a per-component STEM breakdown."""
    geometry = geometry if geometry is not None else paper_table3_geometry()
    reports = run(geometry)
    stem = reports["STEM"]
    lines = [
        "Table 3: storage overhead at 2 MB / 16-way / 2048 sets / 44-bit "
        "addresses",
        f"  tag field length: {geometry.tag_bits} bits "
        "(paper: 27)",
        f"  LRU baseline storage: {stem.baseline_bits / 8 / 1024:.1f} KiB",
        "",
        "  STEM component breakdown:",
    ]
    for component, bits in stem.rows():
        lines.append(f"    {component:>22s}: {bits:>10,d} bits")
    lines.append(
        f"    {'total extra':>22s}: {stem.extra_bits:>10,d} bits "
        f"= {stem.overhead_percent:.2f}% of baseline "
        f"(paper: {PAPER_STEM_OVERHEAD_PERCENT}%)"
    )
    lines.append("")
    lines.append("  all schemes:")
    for name, report in reports.items():
        lines.append(
            f"    {name:>8s}: +{report.extra_bits:>10,d} bits "
            f"({report.overhead_percent:5.2f}%)"
        )
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
