"""Off-chip traffic: line transfers per kilo-instruction, per scheme.

An extension experiment beyond the paper's three metrics: every LLC
miss fetches one line and every dirty eviction writes one back, so the
DRAM-facing traffic is ``misses + writebacks`` — the energy/bandwidth
face of the same capacity-management story.  Schemes that keep more of
the working set on chip (STEM's cooperation, DIP's thrash-proofing)
cut fetch traffic; cooperative schemes additionally avoid write-backs
whenever a dirty victim is *spilled* instead of evicted.

Traces for this experiment carry a write mask (30% writes by default)
so the write-back path is actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.sim.config import ExperimentScale, PAPER_SCHEMES, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import benchmark_names, make_benchmark_trace

#: Fraction of accesses marked as writes for the traffic runs.
DEFAULT_WRITE_FRACTION = 0.3


@dataclass
class TrafficResult:
    """Per-benchmark, per-scheme off-chip line transfers / kinstr."""

    benchmarks: Sequence[str]
    schemes: Sequence[str]
    fetches_pki: Dict[str, Dict[str, float]]
    writebacks_pki: Dict[str, Dict[str, float]]

    def total_pki(self, benchmark: str, scheme: str) -> float:
        """Fetch + write-back lines per kilo-instruction."""
        return (
            self.fetches_pki[benchmark][scheme]
            + self.writebacks_pki[benchmark][scheme]
        )


def run(
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = PAPER_SCHEMES,
    scale: Optional[ExperimentScale] = None,
    write_fraction: float = DEFAULT_WRITE_FRACTION,
) -> TrafficResult:
    """Measure off-chip traffic for the selected benchmarks/schemes."""
    scale = scale if scale is not None else ExperimentScale.default()
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    fetches: Dict[str, Dict[str, float]] = {}
    writebacks: Dict[str, Dict[str, float]] = {}
    for name in names:
        trace = make_benchmark_trace(
            name,
            num_sets=scale.num_sets,
            length=scale.trace_length,
            write_fraction=write_fraction,
        )
        fetches[name] = {}
        writebacks[name] = {}
        for scheme in schemes:
            cache = make_scheme(scheme, scale.geometry())
            result = run_trace(
                cache,
                trace,
                warmup_fraction=scale.warmup_fraction,
                machine=scale.machine,
            )
            kinstr = result.measured_instructions / 1000.0
            fetches[name][result.scheme] = result.stats.misses / kinstr
            writebacks[name][result.scheme] = (
                result.stats.writebacks / kinstr
            )
    return TrafficResult(
        benchmarks=names,
        schemes=list(schemes),
        fetches_pki=fetches,
        writebacks_pki=writebacks,
    )


def main(
    scale: Optional[ExperimentScale] = None,
    benchmarks: Sequence[str] = ("omnetpp", "mcf", "soplex"),
) -> str:
    """Render the traffic table for a representative benchmark trio."""
    result = run(benchmarks=benchmarks, scale=scale)
    lines = [
        "Off-chip traffic: lines per kilo-instruction "
        "(fetches + writebacks)",
        f"{'benchmark':>12s} " + "".join(
            f"{scheme:>12s}" for scheme in result.schemes
        ),
    ]
    for name in result.benchmarks:
        cells = "".join(
            f"{result.total_pki(name, scheme):>12.2f}"
            for scheme in result.schemes
        )
        lines.append(f"{name:>12s} {cells}")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
