"""Figure 1 — distribution of set-level capacity demands over time.

The paper samples omnetpp and ammp on a 2048-set LLC for 1000 intervals
of 50 000 accesses and plots, per interval, the fraction of sets whose
capacity demand falls in each 2-way band of [0, 32].  The headline
observations this experiment must reproduce:

* both workloads' demands are strongly non-uniform across sets;
* for omnetpp, roughly half the sets need no more than 16 lines
  (and a visible band sits at 15-16 ways);
* for ammp, roughly half the sets need no more than 4 lines, with a
  distinct zero-demand ("streaming") band.

We run a scaled configuration by default (DESIGN.md §4): fewer sets and
shorter intervals, which leaves the per-set demand statistics intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.capacity_demand import (
    CapacityDemandProfile,
    profile_capacity_demand,
)
from repro.sim.config import ExperimentScale
from repro.workloads.spec_like import make_benchmark_trace

#: The two workloads the paper characterises.
FIGURE1_BENCHMARKS = ("omnetpp", "ammp")


@dataclass
class Figure1Result:
    """Profile plus the paper's two headline fractions."""

    benchmark: str
    profile: CapacityDemandProfile
    fraction_le_16: float
    fraction_le_4: float
    mean_bands: Dict[Tuple[int, int], float]


def run(
    benchmark: str = "omnetpp",
    scale: Optional[ExperimentScale] = None,
    max_ways: int = 32,
    num_intervals: int = 50,
    interval_length: int = 10_000,
) -> Figure1Result:
    """Profile one benchmark's set-level capacity demand."""
    scale = scale if scale is not None else ExperimentScale.default()
    trace = make_benchmark_trace(
        benchmark,
        num_sets=scale.num_sets,
        length=num_intervals * interval_length,
    )
    profile = profile_capacity_demand(
        trace,
        num_sets=scale.num_sets,
        max_ways=max_ways,
        interval_length=interval_length,
    )
    return Figure1Result(
        benchmark=benchmark,
        profile=profile,
        fraction_le_16=profile.fraction_with_demand_at_most(16),
        fraction_le_4=profile.fraction_with_demand_at_most(4),
        mean_bands=profile.mean_distribution(),
    )


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render the Figure 1 characterisation for both benchmarks."""
    lines = []
    for benchmark in FIGURE1_BENCHMARKS:
        result = run(benchmark, scale=scale)
        lines.append(
            f"Figure 1 ({benchmark}): mean share of sets per demand band"
        )
        for band, fraction in result.mean_bands.items():
            low, high = band
            label = "0 (streaming/idle)" if band == (0, 0) else f"{low}-{high}"
            bar = "#" * round(fraction * 60)
            lines.append(f"  {label:>18s}  {fraction:6.1%}  {bar}")
        lines.append(
            f"  sets needing <= 4 ways: {result.fraction_le_4:6.1%}   "
            f"sets needing <= 16 ways: {result.fraction_le_16:6.1%}"
        )
        lines.append("")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
