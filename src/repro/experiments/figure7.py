"""Figure 7 — normalized MPKI for the 15 benchmarks plus the geomean.

The paper's observations this table must reproduce:

* STEM never materially underperforms LRU and posts the best geomean
  (a 21.4% MPKI reduction in the paper);
* DIP/PeLIFO lead the spatial schemes on Class II and can *degrade*
  ``astar`` (the set-dueling pathology);
* SBC helps Class I, is neutral-to-harmful elsewhere;
* no scheme improves ``art`` at this capacity.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.evaluation import run_evaluation
from repro.sim.config import ExperimentScale, PAPER_SCHEMES
from repro.sim.results import format_table
from repro.workloads.spec_like import benchmark_names


def run(
    scale: Optional[ExperimentScale] = None,
    schemes: Sequence[str] = PAPER_SCHEMES,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Normalized-MPKI table (workload rows, scheme columns, + geomean)."""
    matrix = run_evaluation(scale=scale, schemes=schemes, benchmarks=benchmarks)
    return matrix.normalized_table(lambda result: result.mpki)


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render Figure 7 in the paper's benchmark order."""
    table = run(scale=scale)
    ordered = {
        name: table[name] for name in benchmark_names() if name in table
    }
    if "Geomean" in table:
        ordered["Geomean"] = table["Geomean"]
    text = format_table(
        ordered,
        columns=list(PAPER_SCHEMES),
        title="Figure 7: MPKI normalized to LRU",
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
