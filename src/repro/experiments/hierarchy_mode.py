"""Hierarchy mode: the full L1 -> LLC -> DRAM stack of Table 1.

The headline experiments drive the LLC directly with L2-level traces
(the paper's figures are L2-centric).  This experiment closes the loop
on the rest of Table 1: a 32 KB 2-way L1 with MSHRs and write buffers
filters a raw access stream before it reaches the evaluated LLC, and
the reported AMAT covers the whole hierarchy.  Because the L1 absorbs
short-distance reuse, the surviving L2 stream is burstier and more
conflict-prone — a sanity check that STEM's advantages are not an
artefact of feeding it unfiltered traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.sim.config import ExperimentScale, make_scheme
from repro.workloads.spec_like import make_benchmark_trace

#: Schemes compared in hierarchy mode (a representative subset).
DEFAULT_SCHEMES = ("LRU", "DIP", "SBC", "STEM")


@dataclass
class HierarchyResult:
    """Whole-hierarchy metrics for one benchmark."""

    benchmark: str
    l1_miss_rate: float
    llc_miss_rate: Dict[str, float]
    amat_cycles: Dict[str, float]


def run(
    benchmark: str = "omnetpp",
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: Optional[ExperimentScale] = None,
) -> HierarchyResult:
    """Drive one benchmark through the full hierarchy per scheme."""
    scale = scale if scale is not None else ExperimentScale.default()
    trace = make_benchmark_trace(
        benchmark, num_sets=scale.num_sets, length=scale.trace_length
    )
    llc_miss_rate: Dict[str, float] = {}
    amat: Dict[str, float] = {}
    l1_rate = 0.0
    for scheme in schemes:
        llc = make_scheme(scheme, scale.geometry())
        hierarchy = CacheHierarchy(llc, latency=scale.machine.latency)
        for address in trace.addresses:
            hierarchy.access(address)
        hierarchy.drain()
        l1_rate = hierarchy.l1.stats.miss_rate
        llc_miss_rate[llc.name] = llc.stats.miss_rate
        amat[llc.name] = hierarchy.amat_cycles
    return HierarchyResult(
        benchmark=benchmark,
        l1_miss_rate=l1_rate,
        llc_miss_rate=llc_miss_rate,
        amat_cycles=amat,
    )


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render hierarchy-mode results for omnetpp and mcf."""
    lines = []
    for benchmark in ("omnetpp", "mcf"):
        result = run(benchmark, scale=scale)
        lines.append(
            f"Hierarchy mode — {benchmark} "
            f"(L1 miss rate {result.l1_miss_rate:.3f}):"
        )
        for scheme in result.llc_miss_rate:
            lines.append(
                f"  {scheme:>6s}: LLC miss rate "
                f"{result.llc_miss_rate[scheme]:.3f}, "
                f"hierarchy AMAT {result.amat_cycles[scheme]:7.2f} cycles"
            )
        lines.append("")
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
