"""Ablations of STEM's design choices (DESIGN.md §6).

The paper argues for three design decisions we can switch off or vary
independently:

* **Receiving control** (Section 4.6): the giver refuses spills once it
  stops looking like a giver.  Disabling it yields SBC-style
  unconditional receiving — the pollution pathology the paper warns
  about should reappear on giver-fragile workloads.
* **Shadow policy inversion** (Section 4.3): the shadow set runs the
  opposite policy of its LLC set, which is what lets ``SC_T`` detect a
  better temporal policy.  Disabling it blinds the temporal duel.
* **Spatial decrement ratio** ``1/2**n`` (Section 4.4): how much hit
  frequency discounts capacity demand; Table 3 uses n = 3.
* **Heap capacity**: how many candidate givers the controller tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.config import StemConfig
from repro.core.stem_cache import StemCache
from repro.sim.config import ExperimentScale
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.spec_like import make_benchmark_trace

#: Benchmarks used for the ablations: one spatial-sensitive, one
#: temporal-sensitive, one giver-fragile.
DEFAULT_BENCHMARKS = ("omnetpp", "mcf", "astar")


@dataclass
class AblationResult:
    """MPKI per (benchmark, variant)."""

    variants: List[str]
    mpki: Dict[str, Dict[str, float]]  # benchmark -> variant -> mpki


def _run_variant(
    trace, scale: ExperimentScale, config: StemConfig
) -> RunResult:
    cache = StemCache(scale.geometry(), config=config)
    return run_trace(
        cache, trace, warmup_fraction=scale.warmup_fraction,
        machine=scale.machine,
    )


def run(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    scale: Optional[ExperimentScale] = None,
    variants: Optional[Dict[str, StemConfig]] = None,
) -> AblationResult:
    """Run STEM variants across the selected benchmarks."""
    scale = scale if scale is not None else ExperimentScale.default()
    if variants is None:
        base = StemConfig()
        variants = {
            "baseline": base,
            "spatial-only": replace(base, enable_temporal=False),
            "temporal-only": replace(base, enable_spatial=False),
            "no-receiving-control": replace(base, receiving_control=False),
            "mirrored-shadow": replace(base, invert_shadow_policy=False),
            "n=1": replace(base, spatial_ratio_bits=1),
            "n=5": replace(base, spatial_ratio_bits=5),
            "heap=4": replace(base, heap_capacity=4),
            "heap=64": replace(base, heap_capacity=64),
        }
    mpki: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        trace = make_benchmark_trace(
            benchmark, num_sets=scale.num_sets, length=scale.trace_length
        )
        mpki[benchmark] = {
            name: _run_variant(trace, scale, config).mpki
            for name, config in variants.items()
        }
    return AblationResult(variants=list(variants), mpki=mpki)


def main(scale: Optional[ExperimentScale] = None) -> str:
    """Render the ablation table (MPKI, lower is better)."""
    result = run(scale=scale)
    variants = result.variants
    lines = [
        "STEM ablations: MPKI by variant (lower is better)",
        f"{'benchmark':>12s} " + "".join(f"{v:>22s}" for v in variants),
    ]
    for benchmark, row in result.mpki.items():
        lines.append(
            f"{benchmark:>12s} "
            + "".join(f"{row[v]:>22.3f}" for v in variants)
        )
    text = "\n".join(lines)
    print(text)
    return text


if __name__ == "__main__":
    main()
