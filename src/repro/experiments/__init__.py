"""One module per paper figure/table, plus ablations (DESIGN.md §3).

Every module exposes ``run(...)`` returning structured results and
``main(...)`` printing the same rows/series the paper's figure plots.
``python -m repro.experiments.figure7`` (etc.) regenerates a figure
from the command line.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    evaluation,
    figure1,
    figure2,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    hierarchy_mode,
    optgap,
    table2,
    table3,
    traffic,
)

__all__ = [
    "ablations",
    "evaluation",
    "figure1",
    "figure2",
    "figure3",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "headline",
    "hierarchy_mode",
    "optgap",
    "table2",
    "table3",
    "traffic",
]
