"""Resilience layer: fault injection, safe mode, crash-tolerant runs.

Three concerns live here (DESIGN.md's resilience note):

* :mod:`repro.resilience.faults` — a deterministic, seeded fault-
  injection engine that corrupts simulated state mid-run (saturating
  counters, shadow tags, the association table, the giver heap, trace
  records), driven by a declarative :class:`FaultPlan`;
* :mod:`repro.resilience.harness` — per-run isolation for experiment
  grids: retry-with-reseed, a wall-clock watchdog, and structured
  :class:`~repro.sim.results.RunFailure` records instead of aborts;
* :mod:`repro.resilience.campaign` — ties both together into the
  ``repro faults`` CLI: run a campaign, measure the MPKI degradation
  against the fault-free run and the plain-LRU baseline.
"""

from repro.resilience.campaign import CampaignReport, run_fault_campaign
from repro.resilience.faults import (
    FAULT_TARGETS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectingCache,
    ScheduledFault,
)
from repro.resilience.harness import RetryPolicy, guarded_run

__all__ = [
    "FAULT_TARGETS",
    "CampaignReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectingCache",
    "RetryPolicy",
    "ScheduledFault",
    "guarded_run",
    "run_fault_campaign",
]
