"""Per-run isolation: retry-with-reseed and failure capture.

:func:`guarded_run` is the crash-tolerant wrapper the experiment
runner puts around each (scheme, trace) cell: the run executes under an
optional wall-clock watchdog, an exception is retried under the
:class:`RetryPolicy`'s reseeding schedule, and a run that exhausts its
attempts is summarised as a structured
:class:`~repro.sim.results.RunFailure` instead of unwinding the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, List, Optional, Union

from repro.common.errors import ConfigError
from repro.sim.config import MachineConfig
from repro.sim.results import RunFailure
from repro.sim.simulator import RunResult, run_trace
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class RetryPolicy:
    """How a failed run is retried before being recorded as a failure.

    Each attempt rebuilds the cache with a fresh seed (``base_seed +
    attempt * reseed_step``) — a transient, seed-dependent failure mode
    (e.g. a pathological LFSR interaction) gets a genuinely different
    run, while a deterministic bug fails every attempt and surfaces as
    a :class:`~repro.sim.results.RunFailure` carrying every seed tried.
    """

    max_attempts: int = 1
    reseed_step: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def seeds(self, base_seed: int) -> List[int]:
        """The scheme seeds attempted, in order."""
        return [
            base_seed + attempt * self.reseed_step
            for attempt in range(self.max_attempts)
        ]


#: The default single-attempt policy.
DEFAULT_RETRY = RetryPolicy()


def guarded_run(
    make_cache: Callable[[int], Any],
    trace: Trace,
    *,
    scheme: str,
    base_seed: int,
    retry: Optional[RetryPolicy] = None,
    watchdog_seconds: Optional[float] = None,
    warmup_fraction: float = 0.25,
    machine: Optional[MachineConfig] = None,
    metrics_window: Optional[int] = None,
    telemetry=None,
    backend: Optional[str] = None,
    ledger: bool = False,
) -> Union[RunResult, RunFailure]:
    """Run one (scheme, trace) cell with isolation.

    ``make_cache`` builds a fresh cache from a seed; it is called once
    per attempt so every retry starts from pristine state.  Returns the
    :class:`RunResult` of the first successful attempt, or a
    :class:`RunFailure` describing the *last* error once the retry
    budget is exhausted.  ``KeyboardInterrupt``/``SystemExit`` are never
    swallowed.

    ``telemetry`` (a :class:`~repro.obs.telemetry.CellTelemetry`)
    reports the cell span live over the run's status-file channel: the
    start (with seed, watchdog and retry budget), each failed attempt,
    heartbeats from inside the simulation loop, and the final verdict —
    so a parent aggregator can tell a slow cell from a stalled worker
    before the watchdog deadline converts it into a RunFailure.

    ``backend`` is forwarded to :func:`run_trace` on the first attempt
    only; retries force the scalar oracle so a hypothetical columnar
    defect can never burn the whole retry budget on the same kernel.
    (The exactness contract makes the paths interchangeable, so the
    downgrade is invisible in results.)

    ``ledger=True`` threads the capacity-flow ledger through each
    attempt (every retry gets a fresh sink with its fresh cache).  A
    conservation violation at seal is an exception like any other: it
    is retried under the policy and, if persistent, surfaces as a
    structured :class:`RunFailure` naming ``InvariantViolation``.
    """
    retry = retry if retry is not None else DEFAULT_RETRY
    seeds = retry.seeds(base_seed)
    started = perf_counter()
    last_error: Optional[BaseException] = None
    if telemetry is not None:
        telemetry.cell_start(
            total_accesses=len(trace),
            seed=base_seed,
            watchdog_seconds=watchdog_seconds,
            max_attempts=retry.max_attempts,
        )
    for attempt, seed in enumerate(seeds, start=1):
        try:
            cache = make_cache(seed)
            result = run_trace(
                cache,
                trace,
                warmup_fraction=warmup_fraction,
                machine=machine,
                deadline_seconds=watchdog_seconds,
                metrics_window=metrics_window,
                telemetry=telemetry,
                backend=backend if attempt == 1 else "python",
                ledger=ledger,
            )
            if telemetry is not None:
                telemetry.cell_end("ok")
            return result
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            last_error = exc
            if telemetry is not None:
                telemetry.attempt_failed(attempt, seed, str(exc))
    # max_attempts >= 1 guarantees at least one loop pass set last_error.
    if telemetry is not None:
        telemetry.cell_end("failed", error_type=type(last_error).__name__)
    return RunFailure(
        workload=trace.name,
        scheme=scheme,
        error_type=type(last_error).__name__,
        message=str(last_error),
        attempts=len(seeds),
        seeds=tuple(seeds),
        elapsed_seconds=perf_counter() - started,
    )
