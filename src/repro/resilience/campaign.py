"""Fault campaigns: measure degradation instead of crashing.

:func:`run_fault_campaign` runs one (scheme, benchmark) pair three
ways on the *same* trace — fault-free, faulted under a
:class:`~repro.resilience.faults.FaultPlan` with safe mode armed, and
the plain-LRU baseline — and summarises the damage as a
:class:`CampaignReport`: MPKI deltas, safe-mode entries, and the
manifest content hashes that make two identical campaigns provably
identical.  Everything in the report is deterministic (no wall-clock,
no host details), so ``render()`` output is byte-stable for a given
(scheme, benchmark, plan, seed, scale).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.common.io import atomic_write_text
from repro.core.config import StemConfig
from repro.obs.tracer import Tracer
from repro.resilience.faults import FaultInjector, FaultPlan, InjectingCache
from repro.sim.config import ExperimentScale, make_scheme
from repro.sim.simulator import run_trace
from repro.workloads.spec_like import make_benchmark_trace
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class CampaignReport:
    """Deterministic summary of one fault campaign."""

    scheme: str
    benchmark: str
    plan: str
    seed: int
    faults_applied: int
    faults_skipped: int
    faults_by_target: Dict[str, int]
    baseline_mpki: float
    faulted_mpki: float
    lru_mpki: float
    safe_mode_entries: int
    safe_mode_sets: int
    baseline_hash: str
    faulted_hash: str

    @property
    def mpki_delta(self) -> float:
        """Faulted minus fault-free MPKI (positive = degradation)."""
        return self.faulted_mpki - self.baseline_mpki

    @property
    def mpki_delta_pct(self) -> float:
        """MPKI delta as a percentage of the fault-free run."""
        if self.baseline_mpki == 0.0:
            return 0.0
        return 100.0 * self.mpki_delta / self.baseline_mpki

    @property
    def vs_lru_pct(self) -> float:
        """Faulted MPKI relative to plain LRU, as a signed percentage."""
        if self.lru_mpki == 0.0:
            return 0.0
        return 100.0 * (self.faulted_mpki - self.lru_mpki) / self.lru_mpki

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable view (derived metrics included)."""
        return {
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "plan": self.plan,
            "seed": self.seed,
            "faults_applied": self.faults_applied,
            "faults_skipped": self.faults_skipped,
            "faults_by_target": dict(self.faults_by_target),
            "baseline_mpki": self.baseline_mpki,
            "faulted_mpki": self.faulted_mpki,
            "lru_mpki": self.lru_mpki,
            "mpki_delta": self.mpki_delta,
            "mpki_delta_pct": self.mpki_delta_pct,
            "vs_lru_pct": self.vs_lru_pct,
            "safe_mode_entries": self.safe_mode_entries,
            "safe_mode_sets": self.safe_mode_sets,
            "baseline_hash": self.baseline_hash,
            "faulted_hash": self.faulted_hash,
        }

    def render(self) -> str:
        """Byte-stable plain-text degradation report."""
        by_target = ", ".join(
            f"{target}={count}"
            for target, count in self.faults_by_target.items()
        ) or "none"
        lines = [
            f"fault campaign — {self.scheme} on {self.benchmark}",
            f"  plan: {self.plan}  (seed {self.seed})",
            f"  faults applied: {self.faults_applied} ({by_target})"
            + (f", skipped: {self.faults_skipped}"
               if self.faults_skipped else ""),
            f"  MPKI fault-free: {self.baseline_mpki:.3f}",
            f"  MPKI faulted:    {self.faulted_mpki:.3f}  "
            f"(delta {self.mpki_delta:+.3f}, {self.mpki_delta_pct:+.2f}%)",
            f"  MPKI plain LRU:  {self.lru_mpki:.3f}  "
            f"(faulted vs LRU {self.vs_lru_pct:+.2f}%)",
            f"  safe-mode entries: {self.safe_mode_entries} "
            f"({self.safe_mode_sets} sets degraded to LRU)",
            f"  manifest hashes: fault-free {self.baseline_hash[:16]}…  "
            f"faulted {self.faulted_hash[:16]}…",
        ]
        return "\n".join(lines)

    def save(self, path: str) -> None:
        """Write the report as JSON, atomically."""
        atomic_write_text(
            path,
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
        )


def _scheme_configuration(
    scheme: str, safe_mode: bool
) -> Dict[str, Any]:
    """Extra make_scheme kwargs arming safe mode where supported."""
    if scheme.lower() == "stem" and safe_mode:
        return {"config": StemConfig(safe_mode=True)}
    return {}


def run_fault_campaign(
    scheme: str,
    benchmark: Union[str, Trace],
    plan: Union[str, FaultPlan],
    seed: int = 0xACE1,
    scale: Optional[ExperimentScale] = None,
    safe_mode: bool = True,
    tracer: Optional[Tracer] = None,
) -> CampaignReport:
    """Run one deterministic fault campaign and summarise degradation.

    All three runs (fault-free, faulted, plain-LRU reference) execute
    with ``warmup_fraction=0.0`` so the injection schedule covers the
    entire access stream and the safe-mode statistics are never reset
    mid-run.  ``benchmark`` may be a benchmark name or a pre-built
    :class:`~repro.workloads.trace.Trace`.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    if isinstance(benchmark, Trace):
        trace = benchmark
        benchmark_name = trace.name
    else:
        benchmark_name = benchmark
        trace = make_benchmark_trace(
            benchmark, num_sets=scale.num_sets, length=scale.trace_length
        )
    geometry = scale.geometry()
    extra = _scheme_configuration(scheme, safe_mode)

    baseline_cache = make_scheme(scheme, geometry, seed=seed, **extra)
    baseline = run_trace(
        baseline_cache, trace, warmup_fraction=0.0, machine=scale.machine
    )

    faulted_cache = make_scheme(
        scheme, geometry, seed=seed, tracer=tracer, **extra
    )
    injector = FaultInjector(
        plan, length=len(trace), seed=seed, tracer=tracer
    )
    faulted = run_trace(
        InjectingCache(faulted_cache, injector),
        trace,
        warmup_fraction=0.0,
        machine=scale.machine,
    )

    lru_cache = make_scheme("lru", geometry, seed=seed)
    lru = run_trace(
        lru_cache, trace, warmup_fraction=0.0, machine=scale.machine
    )

    safe_sets: Tuple[int, ...] = tuple(
        getattr(faulted_cache, "safe_mode_sets", lambda: ())()
    )
    return CampaignReport(
        scheme=baseline.scheme,
        benchmark=benchmark_name,
        plan=plan.describe(),
        seed=seed,
        faults_applied=injector.applied,
        faults_skipped=injector.skipped,
        faults_by_target=injector.counts_by_target(),
        baseline_mpki=baseline.mpki,
        faulted_mpki=faulted.mpki,
        lru_mpki=lru.mpki,
        safe_mode_entries=faulted.stats.safe_mode_entries,
        safe_mode_sets=len(safe_sets),
        baseline_hash=(
            baseline.manifest.content_hash if baseline.manifest else ""
        ),
        faulted_hash=(
            faulted.manifest.content_hash if faulted.manifest else ""
        ),
    )
