"""Deterministic, seeded fault injection into simulated cache state.

A campaign is described by a :class:`FaultPlan` — *what* to corrupt
(``sc_s``, ``sc_t``, ``shadow``, ``association``, ``heap``, ``trace``),
*how many* times, and *when* (a fractional window of the run).  The
plan is expanded against a trace length and a seed into a concrete,
sorted injection schedule; every random choice (which access, which
set, which bit) comes from one SplitMix64 stream, so the same plan +
seed + workload reproduces the same campaign bit for bit.

:class:`InjectingCache` wraps any scheme object and applies the
schedule as the access stream flows through it, which lets the
unmodified :func:`~repro.sim.simulator.run_trace` drive a faulted run.
Targets a scheme does not have (e.g. ``sc_s`` on plain LRU) are
recorded as skipped rather than failing the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.access import AccessKind
from repro.common.errors import ConfigError
from repro.common.rng import SplitMix
from repro.obs.events import FaultInjected
from repro.obs.tracer import NULL_TRACER, Tracer

#: Every injectable structure, in canonical order.
FAULT_TARGETS = ("sc_s", "sc_t", "shadow", "association", "heap", "trace")


@dataclass(frozen=True)
class FaultSpec:
    """One line of a plan: inject ``count`` faults into ``target``.

    ``start``/``stop`` bound the injection window as fractions of the
    run, mirroring how :class:`~repro.sim.config.ExperimentScale`
    expresses its warm-up boundary.
    """

    target: str
    count: int = 1
    start: float = 0.0
    stop: float = 1.0

    def __post_init__(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ConfigError(
                f"unknown fault target {self.target!r}; "
                f"known: {', '.join(FAULT_TARGETS)}"
            )
        if self.count < 1:
            raise ConfigError(
                f"fault count must be >= 1, got {self.count}"
            )
        if not 0.0 <= self.start < self.stop <= 1.0:
            raise ConfigError(
                f"fault window [{self.start}, {self.stop}) must satisfy "
                "0 <= start < stop <= 1"
            )


@dataclass(frozen=True)
class ScheduledFault:
    """A concrete injection: corrupt ``target`` before access ``index``."""

    index: int
    target: str


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` lines.

    The compact text syntax (the CLI's ``--plan``) is comma-separated
    ``target[:count][@start[-stop]]`` items::

        sc_s:3,association:1@0.5,trace:8@0.25-0.75

    meaning three SC_S bit flips anywhere in the run, one association
    glitch in the second half, and eight trace-record glitches in the
    middle two quarters.
    """

    specs: Tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigError("a fault plan needs at least one spec")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the compact ``target[:count][@start[-stop]]`` syntax."""
        specs: List[FaultSpec] = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            window = (0.0, 1.0)
            if "@" in item:
                item, window_text = item.split("@", 1)
                try:
                    if "-" in window_text:
                        start_text, stop_text = window_text.split("-", 1)
                        window = (float(start_text), float(stop_text))
                    else:
                        window = (float(window_text), 1.0)
                except ValueError as exc:
                    raise ConfigError(
                        f"bad fault window {window_text!r} in {item!r}"
                    ) from exc
            count = 1
            if ":" in item:
                item, count_text = item.split(":", 1)
                try:
                    count = int(count_text)
                except ValueError as exc:
                    raise ConfigError(
                        f"bad fault count {count_text!r} in plan item"
                    ) from exc
            specs.append(FaultSpec(
                target=item.strip(),
                count=count,
                start=window[0],
                stop=window[1],
            ))
        return cls(specs=tuple(specs))

    def describe(self) -> str:
        """Canonical round-trippable text form of the plan."""
        items = []
        for spec in self.specs:
            item = f"{spec.target}:{spec.count}"
            if (spec.start, spec.stop) != (0.0, 1.0):
                item += f"@{spec.start:g}-{spec.stop:g}"
            items.append(item)
        return ",".join(items)

    def total_faults(self) -> int:
        """Number of injections the plan asks for."""
        return sum(spec.count for spec in self.specs)

    def schedule(self, length: int, rng: SplitMix) -> List[ScheduledFault]:
        """Expand into concrete access indices, sorted by time.

        Consumes ``rng`` deterministically: specs in plan order, then
        ``count`` draws each, so the same plan + seed always yields the
        same schedule.
        """
        if length <= 0:
            raise ConfigError(f"trace length must be positive, got {length}")
        scheduled: List[ScheduledFault] = []
        for spec in self.specs:
            low = int(spec.start * length)
            high = max(low, int(spec.stop * length) - 1)
            for _ in range(spec.count):
                scheduled.append(ScheduledFault(
                    index=rng.randint(low, high), target=spec.target
                ))
        scheduled.sort(key=lambda fault: (fault.index, fault.target))
        return scheduled


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live cache, deterministically.

    The injector owns one SplitMix64 stream seeded by the campaign
    seed; the schedule and every corruption choice draw from it in a
    fixed order.  Each applied (or skipped) fault is appended to
    :attr:`log` — the campaign report's raw material — and emitted as a
    ``fault_injected`` trace event when a tracer is enabled.
    """

    def __init__(
        self,
        plan: FaultPlan,
        length: int,
        seed: int,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rng = SplitMix(seed=seed)
        self.schedule = plan.schedule(length, self._rng)
        self._cursor = 0
        self.log: List[Dict[str, Any]] = []

    @property
    def applied(self) -> int:
        """Faults actually applied so far."""
        return sum(1 for entry in self.log if not entry.get("skipped"))

    @property
    def skipped(self) -> int:
        """Scheduled faults the target scheme had no structure for."""
        return sum(1 for entry in self.log if entry.get("skipped"))

    def counts_by_target(self) -> Dict[str, int]:
        """{target: applied count}, keyed in canonical target order."""
        counts = {target: 0 for target in FAULT_TARGETS}
        for entry in self.log:
            if not entry.get("skipped"):
                counts[entry["target"]] += 1
        return {t: c for t, c in counts.items() if c}

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def pending(self, index: int) -> bool:
        """Is any fault scheduled at or before access ``index``?"""
        return (
            self._cursor < len(self.schedule)
            and self.schedule[self._cursor].index <= index
        )

    def step(self, cache: Any, index: int, address: int) -> int:
        """Apply every fault due at access ``index``.

        Returns the (possibly glitched) address the access should use.
        """
        while self.pending(index):
            fault = self.schedule[self._cursor]
            self._cursor += 1
            if fault.target == "trace":
                address = self._glitch_address(cache, index, address)
            else:
                self._apply_state_fault(cache, fault.target, index)
        return address

    # ------------------------------------------------------------------
    # Corruption per target
    # ------------------------------------------------------------------

    def _glitch_address(self, cache: Any, index: int, address: int) -> int:
        geometry = getattr(cache, "geometry", None)
        address_bits = getattr(geometry, "address_bits", None) or 44
        bit = self._rng.randint(0, address_bits - 1)
        glitched = address ^ (1 << bit)
        self._record(
            cache, "trace", set_index=-1,
            detail=f"access={index} bit={bit}", index=index,
        )
        return glitched

    def _apply_state_fault(
        self, cache: Any, target: str, index: int
    ) -> None:
        rng = self._rng
        if target in ("sc_s", "sc_t"):
            monitors = getattr(cache, "monitors", None)
            if not monitors:
                self._skip(cache, target, index)
                return
            set_index = rng.randint(0, len(monitors) - 1)
            counter = getattr(monitors[set_index], target, None)
            if counter is None or not hasattr(counter, "flip_bit"):
                self._skip(cache, target, index)
                return
            bit = rng.randint(0, counter.bits - 1)
            counter.flip_bit(bit)
            self._record(
                cache, target, set_index=set_index,
                detail=f"bit={bit}", index=index,
            )
        elif target == "shadow":
            monitors = getattr(cache, "monitors", None)
            if not monitors:
                self._skip(cache, target, index)
                return
            set_index = rng.randint(0, len(monitors) - 1)
            shadow = getattr(monitors[set_index], "shadow", None)
            if shadow is None:
                self._skip(cache, target, index)
                return
            config = getattr(cache, "config", None)
            tag_bits = getattr(config, "shadow_tag_bits", 10)
            entries = shadow.entries()
            dropped = None
            if entries:
                dropped = entries[rng.randint(0, len(entries) - 1)]
                shadow.lookup_and_invalidate(dropped)
            bogus = rng.randint(0, (1 << tag_bits) - 1)
            shadow.insert(bogus, at_mru=bool(rng.randint(0, 1)))
            self._record(
                cache, "shadow", set_index=set_index,
                detail=f"dropped={dropped} inserted={bogus}", index=index,
            )
        elif target == "association":
            table = getattr(cache, "association", None)
            if table is None:
                self._skip(cache, target, index)
                return
            entry = rng.randint(0, table.num_sets - 1)
            value = rng.randint(0, table.num_sets - 1)
            table.force_entry(entry, value)
            self._record(
                cache, "association", set_index=entry,
                detail=f"entry={entry} value={value}", index=index,
            )
        elif target == "heap":
            heap = getattr(cache, "heap", None)
            if heap is None:
                self._skip(cache, target, index)
                return
            geometry = getattr(cache, "geometry", None)
            num_sets = getattr(geometry, "num_sets", 1)
            # A glitched slot may name a set beyond the end of the LLC;
            # lazy pop-time validation is expected to discard it.
            bogus_set = rng.randint(0, 2 * num_sets - 1)
            saturation = rng.randint(0, 15)
            heap.force_entry(bogus_set, saturation)
            self._record(
                cache, "heap", set_index=-1,
                detail=f"slot={bogus_set} saturation={saturation}",
                index=index,
            )
        else:  # pragma: no cover — FaultSpec validates targets
            raise ConfigError(f"unknown fault target {target!r}")

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _record(
        self, cache: Any, target: str, set_index: int, detail: str,
        index: int,
    ) -> None:
        self.log.append({
            "index": index,
            "target": target,
            "set_index": set_index,
            "detail": detail,
        })
        tracer = self.tracer
        if tracer.enabled:
            stats = getattr(cache, "stats", None)
            accesses = getattr(stats, "accesses", 0)
            tracer.emit(FaultInjected(
                access=accesses,
                set_index=set_index,
                global_access=getattr(cache, "global_accesses", accesses),
                target=target,
                detail=detail,
            ))

    def _skip(self, cache: Any, target: str, index: int) -> None:
        self.log.append({
            "index": index,
            "target": target,
            "set_index": -1,
            "detail": "target not present on this scheme",
            "skipped": True,
        })


class InjectingCache:
    """Transparent cache wrapper that injects faults mid-stream.

    Delegates every attribute to the wrapped cache, intercepting only
    ``access`` to count the access index and give the injector its
    chance to corrupt state (or the address itself) first — so the
    standard :func:`~repro.sim.simulator.run_trace` loop drives a
    faulted run unchanged.
    """

    #: Mask the wrapped cache's batched fast path: ``__getattr__`` would
    #: otherwise hand the simulator a loop that skips fault injection.
    access_batch = None

    def __init__(self, cache: Any, injector: FaultInjector) -> None:
        self._cache = cache
        self._injector = injector
        self._index = 0

    def access(self, address: int, is_write: bool = False) -> AccessKind:
        index = self._index
        self._index = index + 1
        injector = self._injector
        if injector.pending(index):
            address = injector.step(self._cache, index, address)
        return self._cache.access(address, is_write)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._cache, name)

    def __len__(self) -> int:  # pragma: no cover — parity with caches
        return len(self._cache)
