"""Crash-safe filesystem helpers: write-then-rename persistence.

A process killed mid-write must never leave a half-written manifest,
trace, or report where the next tool expects a complete file.  Every
archival write in the package therefore goes through
:func:`atomic_write`: the content lands in a temporary sibling file,
is fsync'ed, and is moved over the destination with :func:`os.replace`
— atomic on POSIX and Windows — so readers only ever observe the old
file or the complete new one.

Environmental write failures — a full disk (``ENOSPC``), a read-only
or permission-denied directory (``EACCES``/``EROFS``) — are reported
as :class:`~repro.common.errors.ReproError` naming the destination, so
a campaign that runs out of disk at cell 900 exits with one clean
``repro: error:`` line (exit code 2) instead of a raw ``OSError``
traceback; the temporary file is removed either way.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, TextIO, Union

from repro.common.errors import ReproError


def _write_error(path: Path, exc: OSError) -> ReproError:
    """Wrap an environmental write failure into a clean library error."""
    reason = exc.strerror or str(exc)
    return ReproError(f"cannot write {path}: {reason}")


@contextmanager
def atomic_write(
    path: Union[str, Path], encoding: str = "utf-8"
) -> Iterator[TextIO]:
    """Yield a text handle whose content replaces ``path`` atomically.

    The temporary file lives in the destination directory (``rename``
    across filesystems is not atomic), is flushed and fsync'ed before
    the rename, and is removed if the caller raises.  An ``OSError``
    from the write path itself — creating the temporary file, writing
    to it, or the final rename — surfaces as
    :class:`~repro.common.errors.ReproError`; non-IO exceptions raised
    by the caller propagate unchanged.
    """
    path = Path(path)
    parent = path.parent if str(path.parent) else Path(".")
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=str(parent), prefix=path.name + ".", suffix=".tmp"
        )
    except OSError as exc:
        raise _write_error(path, exc) from exc
    handle = os.fdopen(fd, "w", encoding=encoding)

    def discard() -> None:
        try:
            handle.close()
        except OSError:
            pass
        try:
            os.unlink(tmp_name)
        except OSError:
            pass

    try:
        yield handle
    except OSError as exc:
        # A failed write into the handle (ENOSPC mid-stream) is an
        # environment problem, not a caller bug: report it cleanly.
        discard()
        raise _write_error(path, exc) from exc
    except BaseException:
        discard()
        raise
    try:
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp_name, path)
    except OSError as exc:
        discard()
        raise _write_error(path, exc) from exc


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (write-then-rename)."""
    with atomic_write(path, encoding=encoding) as handle:
        handle.write(text)
