"""Crash-safe filesystem helpers: write-then-rename persistence.

A process killed mid-write must never leave a half-written manifest,
trace, or report where the next tool expects a complete file.  Every
archival write in the package therefore goes through
:func:`atomic_write`: the content lands in a temporary sibling file,
is fsync'ed, and is moved over the destination with :func:`os.replace`
— atomic on POSIX and Windows — so readers only ever observe the old
file or the complete new one.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, TextIO, Union


@contextmanager
def atomic_write(
    path: Union[str, Path], encoding: str = "utf-8"
) -> Iterator[TextIO]:
    """Yield a text handle whose content replaces ``path`` atomically.

    The temporary file lives in the destination directory (``rename``
    across filesystems is not atomic), is flushed and fsync'ed before
    the rename, and is removed if the caller raises.
    """
    path = Path(path)
    parent = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(parent), prefix=path.name + ".", suffix=".tmp"
    )
    handle = os.fdopen(fd, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp_name, path)
    except BaseException:
        try:
            handle.close()
        except OSError:
            pass
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (write-then-rename)."""
    with atomic_write(path, encoding=encoding) as handle:
        handle.write(text)
