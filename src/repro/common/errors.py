"""Exception hierarchy for the STEM reproduction library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time so that a bad experiment setup
    fails before any simulation cycles are spent.
    """


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent with its metadata."""


class SimulationError(ReproError):
    """An internal invariant of a simulated structure was violated.

    Seeing this exception indicates a bug in the simulator rather than a
    user mistake; the message carries enough state to reproduce it.
    """
