"""Exception hierarchy for the STEM reproduction library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied.

    Raised eagerly at construction time so that a bad experiment setup
    fails before any simulation cycles are spent.
    """


class TraceError(ReproError):
    """A memory trace is malformed or inconsistent with its metadata."""


class SimulationError(ReproError):
    """An internal invariant of a simulated structure was violated.

    Seeing this exception indicates a bug in the simulator rather than a
    user mistake; the message carries enough state to reproduce it.
    """


class InvariantViolation(SimulationError):
    """A structural consistency check failed.

    Raised (never ``assert``-ed, so the checks survive ``python -O``) by
    every scheme's ``check_invariants``.  Under STEM's safe mode the
    controller catches this, repairs the affected sets, and degrades to
    per-set LRU instead of crashing the run.
    """


class CampaignError(ReproError):
    """A campaign could not be run or resumed.

    Raised by the campaign layer for problems *around* the grid —
    a journal that belongs to a different spec, a missing campaign
    directory — never for individual cell failures, which are recorded
    as :class:`~repro.sim.results.RunFailure` and quarantined instead.
    """


class CampaignSpecError(CampaignError):
    """A declarative campaign spec failed preflight validation.

    The message always names the spec file, the key path of the
    offending entry (e.g. ``schemes[1]``) and the rejected value, so a
    typo surfaces before any simulation cycles are spent — mirroring
    the eager :class:`TraceError` contract of ``Trace.load``.
    """


class WatchdogTimeout(ReproError):
    """A simulation exceeded its per-run wall-clock deadline.

    Raised cooperatively by :func:`~repro.sim.simulator.run_trace` when
    a ``deadline_seconds`` budget is set; the crash-tolerant harness
    records it as a :class:`~repro.sim.results.RunFailure` so one hung
    run cannot stall an experiment grid.
    """
