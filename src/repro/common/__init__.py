"""Shared plumbing: addressing, hashing, counters, RNGs, statistics."""

from repro.common.addressing import AddressMapper, is_power_of_two, log2_exact
from repro.common.counters import (
    PolicySelector,
    SaturatingCounter,
    SignedSaturatingCounter,
)
from repro.common.errors import ConfigError, ReproError, SimulationError, TraceError
from repro.common.hashing import H3Hash, fold_xor, parity
from repro.common.rng import Lfsr, SplitMix
from repro.common.stats import CacheStats

__all__ = [
    "AddressMapper",
    "CacheStats",
    "ConfigError",
    "H3Hash",
    "Lfsr",
    "PolicySelector",
    "ReproError",
    "SaturatingCounter",
    "SignedSaturatingCounter",
    "SimulationError",
    "SplitMix",
    "TraceError",
    "fold_xor",
    "is_power_of_two",
    "log2_exact",
    "parity",
]
