"""Saturating counters — the decision hardware of DIP, SBC and STEM.

Three flavours appear in the reproduced designs:

* :class:`SaturatingCounter` — STEM's per-set ``SC_S``/``SC_T`` (k = 4 in
  Table 3): unsigned, clamps at ``[0, 2^k - 1]``, exposes ``msb`` (STEM's
  giver test) and ``saturated`` (taker / policy-swap tests).
* :class:`PolicySelector` — DIP's PSEL dueling counter: unsigned counter
  whose MSB arbitrates between two policies.
* :class:`SignedSaturatingCounter` — SBC's saturation level, the
  difference between miss and hit counts clamped to a signed range.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class SaturatingCounter:
    """Unsigned k-bit saturating counter."""

    __slots__ = ("bits", "max_value", "_value")

    def __init__(self, bits: int, initial: int = 0) -> None:
        if bits <= 0:
            raise ConfigError(f"counter width must be positive, got {bits}")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ConfigError(
                f"initial value {initial} out of range [0, {self.max_value}]"
            )
        self._value = initial

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    @property
    def saturated(self) -> bool:
        """True when the counter has reached its maximum."""
        return self._value == self.max_value

    @property
    def msb(self) -> int:
        """Most significant bit — STEM's giver/taker discriminator."""
        return (self._value >> (self.bits - 1)) & 1

    def increment(self, amount: int = 1) -> None:
        """Add ``amount``, clamping at the maximum."""
        self._value = min(self.max_value, self._value + amount)

    def decrement(self, amount: int = 1) -> None:
        """Subtract ``amount``, clamping at zero."""
        self._value = max(0, self._value - amount)

    def reset(self, value: int = 0) -> None:
        """Force the counter to ``value`` (bounds-checked)."""
        if not 0 <= value <= self.max_value:
            raise ConfigError(
                f"reset value {value} out of range [0, {self.max_value}]"
            )
        self._value = value

    def flip_bit(self, bit: int) -> None:
        """Toggle one stored bit — the fault-injection surface.

        Models a single-event upset in the counter register; the result
        is always within range, so a flipped counter silently steers
        classification decisions rather than crashing the controller.
        """
        if not 0 <= bit < self.bits:
            raise ConfigError(
                f"bit {bit} out of range for a {self.bits}-bit counter"
            )
        self._value ^= 1 << bit

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self._value})"


class PolicySelector:
    """DIP's PSEL: an unsigned dueling counter read through its MSB.

    Misses in the first policy's leader sets increment the counter;
    misses in the second policy's leaders decrement it.  The MSB selects
    the follower policy: MSB = 0 picks policy 0, MSB = 1 picks policy 1
    (the convention from Qureshi et al., ISCA 2007).
    """

    __slots__ = ("_counter",)

    def __init__(self, bits: int = 10) -> None:
        midpoint = 1 << (bits - 1)
        self._counter = SaturatingCounter(bits, initial=midpoint)

    @property
    def value(self) -> int:
        """Raw counter value (mainly for tests and introspection)."""
        return self._counter.value

    def policy0_missed(self) -> None:
        """Record a miss in a policy-0 leader set."""
        self._counter.increment()

    def policy1_missed(self) -> None:
        """Record a miss in a policy-1 leader set."""
        self._counter.decrement()

    def winner(self) -> int:
        """Index (0 or 1) of the policy followers should use."""
        return self._counter.msb  # MSB set -> policy 0 missing more -> use 1


class SignedSaturatingCounter:
    """Signed saturating counter clamped to [-limit, +limit].

    SBC defines a set's *saturation level* as the difference between its
    miss and hit counts; hardware would keep it in a signed register of
    modest width, so we clamp symmetrically.
    """

    __slots__ = ("limit", "_value")

    def __init__(self, limit: int, initial: int = 0) -> None:
        if limit <= 0:
            raise ConfigError(f"limit must be positive, got {limit}")
        if not -limit <= initial <= limit:
            raise ConfigError(
                f"initial value {initial} out of range [{-limit}, {limit}]"
            )
        self.limit = limit
        self._value = initial

    @property
    def value(self) -> int:
        """Current signed value."""
        return self._value

    def increment(self, amount: int = 1) -> None:
        """Add ``amount``, clamping at ``+limit``."""
        self._value = min(self.limit, self._value + amount)

    def decrement(self, amount: int = 1) -> None:
        """Subtract ``amount``, clamping at ``-limit``."""
        self._value = max(-self.limit, self._value - amount)

    def reset(self, value: int = 0) -> None:
        """Force the counter to ``value`` (bounds-checked)."""
        if not -self.limit <= value <= self.limit:
            raise ConfigError(
                f"reset value {value} out of range [{-self.limit}, {self.limit}]"
            )
        self._value = value

    def __repr__(self) -> str:
        return f"SignedSaturatingCounter(limit={self.limit}, value={self._value})"
