"""Physical-address decomposition for set-associative caches.

A cache views a physical address as ``| tag | set index | block offset |``.
:class:`AddressMapper` performs the decomposition for a given geometry and
can also recompose a block address from a ``(tag, set index)`` pair, which
the simulator uses when it forwards victim blocks between sets.

The paper's configuration (Table 3) uses 44-bit effective physical
addresses (Alpha 21264 as modelled by M5), 64-byte lines and 2048 LLC
sets, which yields 27-bit tags; those numbers fall directly out of this
module and are checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive integral power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, *, what: str = "value") -> int:
    """Return ``log2(value)`` or raise :class:`ConfigError` if inexact."""
    if not is_power_of_two(value):
        raise ConfigError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMapper:
    """Splits physical addresses into (tag, set index, offset) fields.

    Parameters
    ----------
    num_sets:
        Number of cache sets; must be a power of two (the paper uses the
        plain MOD mapping with a power-of-two base, Section 2.1).
    line_size:
        Cache line size in bytes; must be a power of two.
    address_bits:
        Width of a physical address.  Table 3 uses 44 bits.
    """

    num_sets: int
    line_size: int
    address_bits: int = 44

    def __post_init__(self) -> None:
        offset_bits = log2_exact(self.line_size, what="line_size")
        index_bits = log2_exact(self.num_sets, what="num_sets")
        if self.address_bits <= offset_bits + index_bits:
            raise ConfigError(
                "address_bits must exceed offset+index bits: "
                f"{self.address_bits} <= {offset_bits} + {index_bits}"
            )
        # Bypass frozen dataclass to cache derived fields.
        object.__setattr__(self, "_offset_bits", offset_bits)
        object.__setattr__(self, "_index_bits", index_bits)
        object.__setattr__(self, "_index_mask", self.num_sets - 1)

    @property
    def offset_bits(self) -> int:
        """Number of address bits consumed by the block offset."""
        return self._offset_bits

    @property
    def index_bits(self) -> int:
        """Number of address bits consumed by the set index."""
        return self._index_bits

    @property
    def tag_bits(self) -> int:
        """Width of the tag field stored in the tag store."""
        return self.address_bits - self._offset_bits - self._index_bits

    def block_address(self, address: int) -> int:
        """Drop the offset bits: the unit the cache actually tracks."""
        return address >> self._offset_bits

    def set_index(self, address: int) -> int:
        """Set the address maps to under the MOD placement function."""
        return (address >> self._offset_bits) & self._index_mask

    def tag(self, address: int) -> int:
        """Tag field of ``address``."""
        return address >> (self._offset_bits + self._index_bits)

    def split(self, address: int) -> "tuple[int, int]":
        """Return ``(set_index, tag)`` in one call (hot path helper)."""
        block = address >> self._offset_bits
        return block & self._index_mask, block >> self._index_bits

    def compose(self, tag: int, set_index: int) -> int:
        """Rebuild the block-aligned physical address for (tag, set)."""
        if not 0 <= set_index < self.num_sets:
            raise ConfigError(
                f"set_index {set_index} out of range [0, {self.num_sets})"
            )
        return ((tag << self._index_bits) | set_index) << self._offset_bits
