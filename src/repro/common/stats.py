"""Statistics collection shared by every simulated cache scheme.

:class:`CacheStats` is intentionally a plain bag of integer counters with
derived-ratio helpers — the hot path does ``stats.hits += 1`` directly —
plus structured latency accounting used by the AMAT/CPI models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple


@dataclass(slots=True)
class CacheStats:
    """Counters accumulated by a cache over a simulation run.

    ``accesses`` counts demand lookups; ``hits``/``misses`` partition it.
    Cooperative schemes (SBC, STEM) additionally split hits into local
    and cooperative ("second") hits, and count the inter-set traffic the
    paper's timing model charges for.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    local_hits: int = 0
    cooperative_hits: int = 0
    misses_single_probe: int = 0  # miss resolved after one tag-store probe
    misses_double_probe: int = 0  # coupled-taker miss probing both sets
    evictions: int = 0
    writebacks: int = 0
    spills: int = 0           # victims forwarded to a cooperative set
    spill_rejects: int = 0    # spills refused by receiving control
    shadow_hits: int = 0      # SCDM shadow-set hits (STEM only)
    policy_swaps: int = 0     # SC_T-triggered LRU<->BIP swaps (STEM only)
    couplings: int = 0
    decouplings: int = 0
    safe_mode_entries: int = 0  # sets degraded to LRU after corruption
    total_latency_cycles: int = 0

    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        """Misses / accesses, or 0.0 when no accesses were recorded."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses, or 0.0 when no accesses were recorded."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def amat_cycles(self) -> float:
        """Average latency per access in cycles (0.0 if no accesses)."""
        if not self.accesses:
            return 0.0
        return self.total_latency_cycles / self.accesses

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter in :attr:`extra`."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this object (for sharded runs)."""
        for name in counter_field_names():
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name, amount in other.extra.items():
            self.bump(name, amount)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view, convenient for result tables."""
        table: Dict[str, float] = {
            name: getattr(self, name) for name in counter_field_names()
        }
        table["miss_rate"] = self.miss_rate
        table["hit_rate"] = self.hit_rate
        table.update(self.extra)
        return table

    def counter_snapshot(self) -> Dict[str, int]:
        """Raw counter values only — no derived ratios, no ``extra``.

        The windowed-metrics registry diffs consecutive snapshots to
        produce per-window deltas; keeping the snapshot free of floats
        makes those deltas exact integers.
        """
        return {name: getattr(self, name) for name in counter_field_names()}


#: Every integer counter field, derived once from the dataclass so
#: ``merge``/``as_dict`` (and the timeline's tracked set) can never
#: silently drop a newly added counter.
_COUNTER_FIELDS: Tuple[str, ...] = tuple(
    spec.name for spec in fields(CacheStats) if spec.name != "extra"
)


def counter_field_names() -> Tuple[str, ...]:
    """Names of all :class:`CacheStats` integer counters, in order."""
    return _COUNTER_FIELDS
