"""Statistics collection shared by every simulated cache scheme.

:class:`CacheStats` is intentionally a plain bag of integer counters with
derived-ratio helpers — the hot path does ``stats.hits += 1`` directly —
plus structured latency accounting used by the AMAT/CPI models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a simulation run.

    ``accesses`` counts demand lookups; ``hits``/``misses`` partition it.
    Cooperative schemes (SBC, STEM) additionally split hits into local
    and cooperative ("second") hits, and count the inter-set traffic the
    paper's timing model charges for.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    local_hits: int = 0
    cooperative_hits: int = 0
    misses_single_probe: int = 0  # miss resolved after one tag-store probe
    misses_double_probe: int = 0  # coupled-taker miss probing both sets
    evictions: int = 0
    writebacks: int = 0
    spills: int = 0           # victims forwarded to a cooperative set
    spill_rejects: int = 0    # spills refused by receiving control
    shadow_hits: int = 0      # SCDM shadow-set hits (STEM only)
    policy_swaps: int = 0     # SC_T-triggered LRU<->BIP swaps (STEM only)
    couplings: int = 0
    decouplings: int = 0
    total_latency_cycles: int = 0

    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        """Misses / accesses, or 0.0 when no accesses were recorded."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses, or 0.0 when no accesses were recorded."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def amat_cycles(self) -> float:
        """Average latency per access in cycles (0.0 if no accesses)."""
        if not self.accesses:
            return 0.0
        return self.total_latency_cycles / self.accesses

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter in :attr:`extra`."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into this object (for sharded runs)."""
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.local_hits += other.local_hits
        self.cooperative_hits += other.cooperative_hits
        self.misses_single_probe += other.misses_single_probe
        self.misses_double_probe += other.misses_double_probe
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.spills += other.spills
        self.spill_rejects += other.spill_rejects
        self.shadow_hits += other.shadow_hits
        self.policy_swaps += other.policy_swaps
        self.couplings += other.couplings
        self.decouplings += other.decouplings
        self.total_latency_cycles += other.total_latency_cycles
        for name, amount in other.extra.items():
            self.bump(name, amount)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view, convenient for result tables."""
        table: Dict[str, float] = {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "local_hits": self.local_hits,
            "cooperative_hits": self.cooperative_hits,
            "misses_single_probe": self.misses_single_probe,
            "misses_double_probe": self.misses_double_probe,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "spills": self.spills,
            "spill_rejects": self.spill_rejects,
            "shadow_hits": self.shadow_hits,
            "policy_swaps": self.policy_swaps,
            "couplings": self.couplings,
            "decouplings": self.decouplings,
            "total_latency_cycles": self.total_latency_cycles,
            "miss_rate": self.miss_rate,
            "hit_rate": self.hit_rate,
        }
        table.update(self.extra)
        return table
