"""Hardware-style hash functions for shadow-tag signatures.

STEM stores an ``m``-bit *hash* of each victim block's tag in the shadow
set (Section 4.2) instead of the full 27-bit tag, citing Ramakrishna et
al., "Efficient Hardware Hashing Functions for High Performance
Computers" (IEEE ToC 1997).  That paper advocates the H3 family: each
output bit is the XOR (parity) of a random subset of input bits, i.e. a
multiplication by a random 0/1 matrix over GF(2).  The family is cheap in
hardware (one XOR tree per output bit) and behaves like a universal hash.

:class:`H3Hash` implements exactly that construction with a deterministic,
seedable matrix so simulations are reproducible.  :func:`fold_xor` is the
simpler fallback (XOR-folding the tag into ``m`` bits) used by some tests
as a worst-case comparison.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ConfigError
from repro.common.rng import Lfsr


def parity(value: int) -> int:
    """Parity (XOR of all bits) of a non-negative integer."""
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def fold_xor(value: int, out_bits: int) -> int:
    """XOR-fold ``value`` down to ``out_bits`` bits.

    Cheap but correlated: adjacent tags collide in structured ways, which
    is precisely why the paper prefers the H3 family.  Kept as a baseline
    for the hashing quality tests.
    """
    if out_bits <= 0:
        raise ConfigError(f"out_bits must be positive, got {out_bits}")
    mask = (1 << out_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= out_bits
    return folded


class H3Hash:
    """H3-family hash: output bit *i* = parity(input & row_i).

    Parameters
    ----------
    in_bits:
        Width of the values being hashed (the tag width).
    out_bits:
        Width of the signature (``m`` in the paper; Table 3 uses 10).
    seed:
        Seed for the LFSR that draws the random GF(2) matrix.

    Signatures are memoised per instance: tag streams repeat heavily, so
    most calls become a single dict hit instead of ``out_bits`` parity
    reductions.  The memo is bounded to keep pathological tag streams
    from growing it without limit.
    """

    __slots__ = ("in_bits", "out_bits", "_rows", "_mask", "_memo")

    #: Maximum memoised signatures before the memo is reset.
    _MEMO_LIMIT = 1 << 20

    def __init__(self, in_bits: int, out_bits: int, seed: int = 0xACE1) -> None:
        if in_bits <= 0:
            raise ConfigError(f"in_bits must be positive, got {in_bits}")
        if out_bits <= 0:
            raise ConfigError(f"out_bits must be positive, got {out_bits}")
        self.in_bits = in_bits
        self.out_bits = out_bits
        rng = Lfsr(seed=seed)
        in_mask = (1 << in_bits) - 1
        rows: List[int] = []
        for _ in range(out_bits):
            row = 0
            # Draw in_bits of randomness 16 bits at a time from the LFSR.
            for shift in range(0, in_bits, 16):
                row |= rng.next_bits(16) << shift
            row &= in_mask
            if row == 0:
                row = 1  # A zero row would make that output bit constant.
            rows.append(row)
        self._rows = rows
        self._mask = (1 << out_bits) - 1
        self._memo: dict = {}

    def __call__(self, value: int) -> int:
        """Hash ``value`` down to ``out_bits`` bits."""
        memo = self._memo
        cached = memo.get(value)
        if cached is not None:
            return cached
        result = 0
        for i, row in enumerate(self._rows):
            result |= parity(value & row) << i
        if len(memo) >= self._MEMO_LIMIT:
            memo.clear()
        memo[value] = result
        return result

    def collision_probability(self) -> float:
        """Ideal collision probability for a universal hash of this width."""
        return 1.0 / (1 << self.out_bits)
