"""Deterministic pseudo-random sources modelled after cheap hardware.

The paper relies on randomness in two places: BIP inserts at MRU "with a
low probability" (1/32 in the DIP paper) and STEM decrements the spatial
saturating counter once per 2^n LLC hits "in a probabilistic way that the
counter is decremented only when an n-bit value produced by a random
number generator is zero" (Section 4.4), noting the generator "can be
simply incorporated in the LLC controller".  A hardware LLC controller
would use an LFSR, so we provide one: deterministic, seedable, and
trivially cheap, which keeps every simulation bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import ConfigError

#: Taps for a maximal-length 16-bit Fibonacci LFSR (x^16+x^14+x^13+x^11+1).
_TAPS_16 = (15, 13, 12, 10)

#: next_bits() calls of one width before a jump table is built for it.
#: Cold widths (H3 matrix setup draws a handful of 16-bit values) never
#: pay the one-time table construction; hot widths (BIP/STEM throttle
#: decisions, millions per run) amortise it within a fraction of a run.
_JUMP_BUILD_THRESHOLD = 4096


class Lfsr:
    """16-bit maximal-length linear feedback shift register.

    The period is 2**16 - 1, which is ample for deciding 1/2^n events; the
    statistical quality requirements here are modest (the hardware being
    modelled would use something equally simple).

    Hot widths are served from class-level *jump tables*: for a width
    ``w``, ``_JUMP_TABLES[w]`` maps every 16-bit state to the value of
    the next ``w`` output bits and to the state after emitting them, so
    ``next_bits``/``one_in`` become two list lookups instead of ``w``
    shift-register steps.  Tables are built lazily (after
    ``_JUMP_BUILD_THRESHOLD`` uses of a width, or on demand via
    :meth:`jump_table`) by stepping the *same* recurrence, so the output
    stream is bit-for-bit identical with and without them.
    """

    __slots__ = ("_state",)

    #: width -> (value-of-next-w-bits per state, state after w steps).
    _JUMP_TABLES: Dict[int, Tuple[List[int], List[int]]] = {}
    _JUMP_USE_COUNTS: Dict[int, int] = {}

    def __init__(self, seed: int = 0xACE1) -> None:
        seed &= 0xFFFF
        if seed == 0:
            raise ConfigError("LFSR seed must be non-zero in 16 bits")
        self._state = seed

    @property
    def state(self) -> int:
        """Current 16-bit register contents."""
        return self._state

    def next_bit(self) -> int:
        """Advance one step and return the new output bit."""
        s = self._state
        bit = ((s >> _TAPS_16[0]) ^ (s >> _TAPS_16[1])
               ^ (s >> _TAPS_16[2]) ^ (s >> _TAPS_16[3])) & 1
        self._state = ((s << 1) | bit) & 0xFFFF
        return bit

    @classmethod
    def jump_table(cls, width: int) -> Tuple[List[int], List[int]]:
        """Build (or fetch) the width-step jump table.

        Index the two returned lists by the current 16-bit state: the
        first yields ``next_bits(width)``'s value, the second the state
        afterwards.  State 0 is unreachable (the all-zero LFSR state is
        rejected at construction) and maps to itself.
        """
        if width <= 0:
            raise ConfigError(f"width must be positive, got {width}")
        table = cls._JUMP_TABLES.get(width)
        if table is None:
            values = [0] * 0x10000
            states = [0] * 0x10000
            for start in range(1, 0x10000):
                state = start
                value = 0
                for _ in range(width):
                    bit = ((state >> 15) ^ (state >> 13)
                           ^ (state >> 12) ^ (state >> 10)) & 1
                    state = ((state << 1) | bit) & 0xFFFF
                    value = (value << 1) | bit
                values[start] = value
                states[start] = state
            table = (values, states)
            cls._JUMP_TABLES[width] = table
        return table

    def next_bits(self, width: int) -> int:
        """Return ``width`` fresh pseudo-random bits as an integer."""
        table = Lfsr._JUMP_TABLES.get(width)
        if table is not None:
            values, states = table
            s = self._state
            self._state = states[s]
            return values[s]
        if width <= 0:
            raise ConfigError(f"width must be positive, got {width}")
        counts = Lfsr._JUMP_USE_COUNTS
        counts[width] = uses = counts.get(width, 0) + 1
        if uses >= _JUMP_BUILD_THRESHOLD:
            values, states = Lfsr.jump_table(width)
            s = self._state
            self._state = states[s]
            return values[s]
        value = 0
        for _ in range(width):
            value = (value << 1) | self.next_bit()
        return value

    def one_in(self, power: int) -> bool:
        """True with probability 1/2**power (the paper's n-bit-zero test)."""
        if power <= 0:
            return True
        return self.next_bits(power) == 0


class SplitMix:
    """SplitMix64 generator for workload synthesis.

    Workload generators need better-distributed randomness than an LFSR
    but must stay dependency-free and deterministic; SplitMix64 is the
    standard tiny answer.  Not used by any simulated hardware.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._state = seed & self._MASK

    def next_u64(self) -> int:
        """Next 64-bit value."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ConfigError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, sequence):
        """Uniformly pick one element of a non-empty sequence."""
        if not sequence:
            raise ConfigError("cannot choose from an empty sequence")
        return sequence[self.next_u64() % len(sequence)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]
