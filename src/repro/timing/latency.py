"""The paper's LLC latency model (Section 5.1, Table 1).

Tag and data stores are decoupled; the latencies are:

* hit: one tag-store access (6 cycles) + one data-store access
  (8 cycles) = **14 cycles**;
* miss in an uncoupled or giver set: one tag-store access = **6
  cycles** before the DRAM fetch (300 cycles);
* coupled taker missing in both its own and the cooperative set: two
  consecutive tag-store accesses = **12 cycles** + DRAM;
* "second hit" in the cooperative set: two tag-store accesses + one
  data-store access = **20 cycles**.

:class:`LatencyModel` maps :class:`~repro.cache.access.AccessKind` codes
to cycles and computes the L2-local AMAT directly from a
:class:`~repro.common.stats.CacheStats` kind breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.access import AccessKind
from repro.common.errors import ConfigError
from repro.common.stats import CacheStats


@dataclass(frozen=True)
class LatencyModel:
    """Cycle costs for each LLC access outcome."""

    tag_cycles: int = 6
    data_cycles: int = 8
    memory_cycles: int = 300

    def __post_init__(self) -> None:
        for field_name in ("tag_cycles", "data_cycles", "memory_cycles"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")

    @property
    def local_hit_cycles(self) -> int:
        """Hit in the home set: tag + data (paper: 14)."""
        return self.tag_cycles + self.data_cycles

    @property
    def coop_hit_cycles(self) -> int:
        """Second hit in the cooperative set: 2x tag + data (paper: 20)."""
        return 2 * self.tag_cycles + self.data_cycles

    @property
    def miss_cycles(self) -> int:
        """Single-probe miss: tag + DRAM (paper: 6 + 300)."""
        return self.tag_cycles + self.memory_cycles

    @property
    def miss_coop_cycles(self) -> int:
        """Double-probe miss: 2x tag + DRAM (paper: 12 + 300)."""
        return 2 * self.tag_cycles + self.memory_cycles

    def cycles_for(self, kind: AccessKind) -> int:
        """Latency in cycles of one access with outcome ``kind``."""
        if kind == AccessKind.LOCAL_HIT:
            return self.local_hit_cycles
        if kind == AccessKind.COOP_HIT:
            return self.coop_hit_cycles
        if kind == AccessKind.MISS:
            return self.miss_cycles
        if kind == AccessKind.MISS_COOP:
            return self.miss_coop_cycles
        raise ConfigError(f"unknown access kind: {kind!r}")

    def total_cycles(self, stats: CacheStats) -> int:
        """Aggregate LLC service cycles for a whole run."""
        return (
            stats.local_hits * self.local_hit_cycles
            + stats.cooperative_hits * self.coop_hit_cycles
            + stats.misses_single_probe * self.miss_cycles
            + stats.misses_double_probe * self.miss_coop_cycles
        )

    def amat(self, stats: CacheStats) -> float:
        """L2-local average memory access time in cycles."""
        if stats.accesses == 0:
            return 0.0
        return self.total_cycles(stats) / stats.accesses


#: The configuration used throughout the paper's evaluation.
PAPER_LATENCY = LatencyModel(tag_cycles=6, data_cycles=8, memory_cycles=300)
