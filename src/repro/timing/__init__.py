"""Timing models: the paper's LLC latencies and the analytic CPI model."""

from repro.timing.cpi import PAPER_CPI, CpiModel
from repro.timing.latency import PAPER_LATENCY, LatencyModel

__all__ = ["CpiModel", "LatencyModel", "PAPER_CPI", "PAPER_LATENCY"]
