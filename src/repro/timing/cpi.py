"""Analytic CPI model of the Alpha-21264-like out-of-order core.

The paper measures CPI with the cycle-accurate M5 simulator; our
substitution (DESIGN.md §4) is the standard first-order decomposition

    CPI = CPI_core + stall cycles per instruction,

where the stall term is the LLC service time seen by the program:
each L2 access costs its AMAT, discounted by an *overlap factor* that
captures the 8-wide out-of-order core's ability to hide part of the
latency behind independent work (Table 1: 192-entry ROB, 64 MSHRs).

``CPI_core`` and ``overlap`` are fixed constants shared by every scheme
in a comparison, so *normalized* CPI (Figure 9) depends only on each
scheme's access-kind breakdown — the same property the paper's
normalization has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.stats import CacheStats
from repro.timing.latency import LatencyModel


@dataclass(frozen=True)
class CpiModel:
    """First-order CPI = base + overlap * L2 stall cycles per instruction."""

    base_cpi: float = 0.7
    overlap: float = 0.6
    l1_hit_cycles: int = 2

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigError(f"base_cpi must be positive, got {self.base_cpi}")
        if not 0.0 < self.overlap <= 1.0:
            raise ConfigError(
                f"overlap must lie in (0, 1], got {self.overlap}"
            )

    def stall_cycles(
        self, stats: CacheStats, latency: LatencyModel
    ) -> float:
        """Exposed LLC stall cycles across the whole run."""
        return self.overlap * latency.total_cycles(stats)

    def cpi(
        self,
        instructions: int,
        stats: CacheStats,
        latency: LatencyModel,
    ) -> float:
        """Cycles per instruction for a run of ``instructions``."""
        if instructions <= 0:
            raise ConfigError(
                f"instructions must be positive, got {instructions}"
            )
        return self.base_cpi + self.stall_cycles(stats, latency) / instructions


#: Constants used by every experiment (fixed across schemes).
PAPER_CPI = CpiModel(base_cpi=0.7, overlap=0.6, l1_hit_cycles=2)
