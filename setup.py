"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on modern pip prefers PEP 660 editable wheels,
which require the ``wheel`` module; this shim lets the legacy
``--no-use-pep517`` editable path work in offline environments.  All
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
