#!/usr/bin/env python3
"""The Figure 2 walkthrough: where spatial and temporal schemes win.

Recreates the paper's conceptual illustration on a 2-set, 4-way LLC:

* Example #1 — one thrashing set + one tiny set: pure *spatial* win
  (SBC/STEM retain everything, DIP can only throttle insertions);
* Example #2 — the partner has less spare room: spatial alone is not
  enough, and only STEM's combined management beats both worlds;
* Example #3 — both sets overflow: pure *temporal* territory (nothing
  to pair; BIP-style insertion is the only lever).

Run:  python examples/synthetic_showdown.py
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.experiments.figure2 import oracle_dip_miss_rate
from repro.sim import make_scheme, run_trace
from repro.workloads import figure2_trace
from repro.workloads.synthetic import (
    FIGURE2_WORKING_SETS,
    figure2_expected_miss_rates,
)

COMMENTARY = {
    1: "set 0 loops 6 blocks, set 1 loops 2: a perfect giver/taker pair",
    2: "set 1 grows to 3 blocks: cooperation still helps but is rationed",
    3: "set 1 loops 5 blocks: no giver anywhere, only insertion policy helps",
}


def main() -> None:
    geometry = CacheGeometry(num_sets=2, associativity=4)
    schemes = ("LRU", "SBC", "STEM")
    print("Figure 2 showdown on a 2-set, 4-way LLC "
          "(miss rates, paper values in parentheses)\n")
    for example in sorted(FIGURE2_WORKING_SETS):
        trace = figure2_trace(example, rounds=4096)
        expected = figure2_expected_miss_rates(example)
        print(f"Example #{example}: {COMMENTARY[example]}")
        measured = {}
        for scheme in schemes:
            cache = make_scheme(scheme, geometry)
            measured[scheme] = run_trace(
                cache, trace, warmup_fraction=0.5
            ).miss_rate
        measured["DIP"] = oracle_dip_miss_rate(trace, num_sets=2, ways=4)
        for scheme in ("LRU", "DIP", "SBC", "STEM"):
            reference = expected.get(scheme)
            suffix = f" (paper {reference:.3f})" if reference is not None else ""
            print(f"    {scheme:>5s}: {measured[scheme]:.3f}{suffix}")
        winner = min(measured, key=measured.get)
        print(f"    -> best: {winner}\n")
    print("The paper's extensional claim: combining spatial and temporal "
          "management\n(STEM) should push Example #2 below SBC's 1/3 — "
          "verified above.")


if __name__ == "__main__":
    main()
