#!/usr/bin/env python3
"""Classic microbenchmark patterns through every LLC scheme.

Runs the canonical cache-study patterns — oversized sequential scans,
conflict-heavy strided walks, pointer chasing, tiled matrix traversal
and a hot/cold mix — against the full scheme roster, and shows a
per-window timeline of STEM adapting to the strided walk.

Run:  python examples/microbenchmarks.py
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.sim import make_scheme, run_timeline, run_trace
from repro.workloads.patterns import (
    hot_cold,
    pointer_chase,
    sequential_scan,
    strided_scan,
    tiled_matrix_traversal,
)

GEOMETRY = CacheGeometry(num_sets=64, associativity=8)  # 32 KiB toy LLC
SCHEMES = ("LRU", "BIP", "DIP", "SRRIP", "V-Way", "SBC", "STEM")


def build_patterns():
    return {
        # Enough passes for STEM's per-set SC_T duel to gather evidence
        # (each set only sees a handful of accesses per pass).
        "seq scan 4x cache": sequential_scan(
            array_bytes=4 * GEOMETRY.capacity_bytes, passes=10,
            element_bytes=64,
        ),
        "strided (1 set)": strided_scan(
            array_bytes=8 * GEOMETRY.capacity_bytes,
            stride_bytes=GEOMETRY.num_sets * 64, passes=3,
        ),
        "pointer chase": pointer_chase(num_nodes=2048, hops=24_000),
        "tiled matrix": tiled_matrix_traversal(
            matrix_rows=64, matrix_cols=64, tile=16, sweeps_per_tile=4,
            element_bytes=64,
        ),
        "hot/cold 90/10": hot_cold(
            hot_bytes=16 * 1024, cold_bytes=1024 * 1024, length=30_000,
        ),
    }


def main() -> None:
    patterns = build_patterns()
    print(f"LLC: {GEOMETRY.capacity_bytes // 1024} KiB, "
          f"{GEOMETRY.associativity}-way, {GEOMETRY.num_sets} sets\n")
    header = f"{'pattern':>18s}" + "".join(f"{s:>8s}" for s in SCHEMES)
    print(header + "   (miss rates)")
    for label, trace in patterns.items():
        cells = []
        for scheme in SCHEMES:
            cache = make_scheme(scheme, GEOMETRY)
            result = run_trace(cache, trace, warmup_fraction=0.3)
            cells.append(f"{result.miss_rate:8.3f}")
        print(f"{label:>18s}" + "".join(cells))

    print("\nSTEM per-window miss rate on the strided walk "
          "(watch the swap/coupling machinery engage):")
    cache = make_scheme("STEM", GEOMETRY)
    timeline = run_timeline(
        cache, patterns["strided (1 set)"], window_length=2000
    )
    for window, rate in enumerate(timeline.series["miss_rate"]):
        swaps = timeline.series["policy_swaps"][window]
        spills = timeline.series["spills"][window]
        bar = "#" * round(rate * 40)
        print(f"  window {window:2d}: {rate:5.2f} {bar}"
              f"   (+{swaps:.0f} swaps, +{spills:.0f} spills)")


if __name__ == "__main__":
    main()
