#!/usr/bin/env python3
"""Profile a workload's set-level capacity demand (the Figure 1 view).

Runs the paper's characterisation — per sampling interval, the minimum
number of cache lines each set needs to resolve the conflict misses a
32-way set would — and renders the band distribution as an ASCII chart,
together with the Figure 6 classification the profile implies.

Run:  python examples/capacity_profile.py [benchmark] [--sets N]
"""

from __future__ import annotations

import argparse

from repro.analysis.capacity_demand import profile_capacity_demand
from repro.analysis.classification import classify_trace
from repro.workloads import benchmark_names, make_benchmark_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmark", nargs="?", default="ammp", choices=benchmark_names()
    )
    parser.add_argument("--sets", type=int, default=128,
                        help="number of LLC sets to model (default 128)")
    parser.add_argument("--intervals", type=int, default=10,
                        help="number of sampling intervals (default 10)")
    parser.add_argument("--interval-length", type=int, default=10_000,
                        help="accesses per interval (default 10000)")
    args = parser.parse_args()

    length = args.intervals * args.interval_length
    trace = make_benchmark_trace(
        args.benchmark, num_sets=args.sets, length=length
    )
    profile = profile_capacity_demand(
        trace,
        num_sets=args.sets,
        max_ways=32,
        interval_length=args.interval_length,
    )
    print(f"Set-level capacity demand of {args.benchmark} "
          f"({args.sets} sets, {args.intervals} intervals of "
          f"{args.interval_length:,} accesses)\n")
    print(f"{'demand band':>14s} {'share':>8s}")
    for band, fraction in profile.mean_distribution().items():
        low, high = band
        label = "0 (streaming)" if band == (0, 0) else f"{low}-{high} ways"
        bar = "#" * round(fraction * 50)
        print(f"{label:>14s} {fraction:8.1%}  {bar}")
    print(f"\nsets needing <= 4 ways:  "
          f"{profile.fraction_with_demand_at_most(4):.1%}")
    print(f"sets needing <= 16 ways: "
          f"{profile.fraction_with_demand_at_most(16):.1%}")

    classification = classify_trace(
        trace, num_sets=args.sets, associativity=16
    )
    print(f"\nFigure 6 classification at 16 ways: "
          f"Class {classification.label}")
    print(f"  giver sets:   {classification.giver_fraction:.1%}")
    print(f"  taker sets:   {classification.taker_fraction:.1%}")
    print(f"  distant re-references: {classification.thrash_fraction:.1%} "
          "of accesses")


if __name__ == "__main__":
    main()
