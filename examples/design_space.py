#!/usr/bin/env python3
"""Explore STEM's design space: associativity sweep + config ablations.

Part one reruns the paper's sensitivity sweep (Figure 10) for a chosen
benchmark.  Part two varies the knobs Table 3 fixes — the spatial
decrement ratio ``n``, the heap capacity, receiving control and the
shadow-policy inversion — and shows what each is worth.

Run:  python examples/design_space.py [benchmark]
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.core.config import StemConfig
from repro.core.stem_cache import StemCache
from repro.sim import ExperimentScale, associativity_sweep, run_trace
from repro.sim.results import format_series
from repro.workloads import benchmark_names, make_benchmark_trace

SCALE = ExperimentScale(num_sets=128, associativity=16, trace_length=120_000)


def sweep(benchmark: str) -> None:
    trace = make_benchmark_trace(
        benchmark, num_sets=SCALE.num_sets, length=SCALE.trace_length
    )
    associativities = (2, 4, 8, 12, 16, 24, 32)
    curves = associativity_sweep(
        trace,
        ("LRU", "DIP", "SBC", "STEM"),
        associativities,
        scale=SCALE,
    )
    series = {
        scheme: [result.mpki for result in results]
        for scheme, results in curves.items()
    }
    print(format_series(
        series,
        associativities,
        x_label="scheme\\assoc",
        title=f"Sensitivity sweep for {benchmark} (MPKI)",
        precision=2,
    ))


def ablate(benchmark: str) -> None:
    trace = make_benchmark_trace(
        benchmark, num_sets=SCALE.num_sets, length=SCALE.trace_length
    )
    base = StemConfig()
    variants = {
        "paper config (n=3, gated)": base,
        "no receiving control": replace(base, receiving_control=False),
        "mirrored shadow policy": replace(base, invert_shadow_policy=False),
        "spatial ratio n=1": replace(base, spatial_ratio_bits=1),
        "spatial ratio n=5": replace(base, spatial_ratio_bits=5),
        "heap capacity 4": replace(base, heap_capacity=4),
        "heap capacity 64": replace(base, heap_capacity=64),
    }
    print(f"\nSTEM configuration ablations on {benchmark} "
          "(MPKI, lower is better)")
    for label, config in variants.items():
        cache = StemCache(SCALE.geometry(), config=config)
        result = run_trace(cache, trace, warmup_fraction=0.25)
        print(f"  {label:>28s}: {result.mpki:7.3f} "
              f"(swaps {cache.stats.policy_swaps:4d}, "
              f"spills {cache.stats.spills:5d}, "
              f"rejects {cache.stats.spill_rejects:5d})")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    if benchmark not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; pick one of: "
            + ", ".join(benchmark_names())
        )
    sweep(benchmark)
    ablate(benchmark)


if __name__ == "__main__":
    main()
