#!/usr/bin/env python3
"""Quickstart: simulate a STEM LLC on a SPEC-like workload.

Builds the paper's cache (scaled to 256 sets for a fast run), feeds it
the ``omnetpp`` model — the paper's showcase of set-level non-uniform
capacity demand — and prints the three paper metrics next to an LRU
baseline, plus a peek at STEM's internal activity.

Run:  python examples/quickstart.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import (
    CacheGeometry,
    StemCache,
    benchmark_names,
    make_benchmark_trace,
    make_scheme,
    run_trace,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    if benchmark not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; pick one of: "
            + ", ".join(benchmark_names())
        )
    geometry = CacheGeometry(num_sets=256, associativity=16)
    trace = make_benchmark_trace(
        benchmark, num_sets=geometry.num_sets, length=300_000
    )
    print(f"workload: {trace.name} (Class {trace.metadata.spec_class}), "
          f"{len(trace):,} L2 accesses / "
          f"{trace.metadata.instructions:,} instructions")
    print(f"LLC: {geometry.capacity_bytes // 1024} KiB, "
          f"{geometry.associativity}-way, {geometry.num_sets} sets\n")

    stem = StemCache(geometry)
    stem_result = run_trace(stem, trace)
    lru_result = run_trace(make_scheme("LRU", geometry), trace)

    print(f"{'metric':>10s} {'LRU':>10s} {'STEM':>10s} {'improvement':>12s}")
    for label, lru_value, stem_value in (
        ("MPKI", lru_result.mpki, stem_result.mpki),
        ("AMAT", lru_result.amat, stem_result.amat),
        ("CPI", lru_result.cpi, stem_result.cpi),
    ):
        gain = (1 - stem_value / lru_value) * 100 if lru_value else 0.0
        print(f"{label:>10s} {lru_value:>10.3f} {stem_value:>10.3f} "
              f"{gain:>+11.1f}%")

    stats = stem.stats
    print("\nSTEM internals over the measured window:")
    print(f"  shadow hits:       {stats.shadow_hits:,}")
    print(f"  policy swaps:      {stats.policy_swaps:,}")
    print(f"  set couplings:     {stats.couplings:,} "
          f"(decouplings: {stats.decouplings:,})")
    print(f"  victim spills:     {stats.spills:,} "
          f"(rejected by receiving control: {stats.spill_rejects:,})")
    print(f"  cooperative hits:  {stats.cooperative_hits:,}")
    takers = sum(
        1 for s in range(geometry.num_sets) if stem.role_of(s) == "taker"
    )
    bip_sets = sum(
        1
        for s in range(geometry.num_sets)
        if stem.policy_mode_of(s) == "BIP"
    )
    print(f"  coupled taker sets at end of run: {takers}")
    print(f"  sets currently running BIP:       {bip_sets}")


if __name__ == "__main__":
    main()
