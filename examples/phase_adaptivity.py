#!/usr/bin/env python3
"""Watch STEM adapt to phase changes: couple, decouple, swap policies.

Builds a three-phase workload on one LLC:

1. a giver/taker phase (half the sets loop beyond their capacity, half
   barely use theirs) — STEM should couple pairs and spill;
2. a uniform-thrash phase — pairs must dissolve and per-set policies
   swap toward BIP;
3. a friendly phase — everything should drift back to quiet LRU.

The cache runs with a :mod:`repro.obs` tracer attached, and each
phase's row is aggregated from the *event log* (``repro.obs.inspect``)
rather than the end-of-phase counters — the same per-event attribution
the ``repro trace`` command exposes — demonstrating the feedback loop
of Figure 4 end to end.

Run:  python examples/phase_adaptivity.py
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.core.stem_cache import StemCache
from repro.obs import RingBufferSink, Tracer
from repro.obs.inspect import coupling_lifetimes, event_counts, spill_fanout
from repro.workloads.generators import SetGroupSpec, WorkloadSpec, generate_trace

NUM_SETS = 64
PHASE_LENGTH = 60_000

PHASES = {
    "giver/taker": WorkloadSpec(
        name="phase-spatial",
        groups=(
            SetGroupSpec(fraction=0.5, weight=1.0, kind="cyclic",
                         ws_min=2, ws_max=4),
            SetGroupSpec(fraction=0.5, weight=2.0, kind="cyclic",
                         ws_min=20, ws_max=28),
        ),
        shuffle_sets=False,
    ),
    "uniform thrash": WorkloadSpec(
        name="phase-temporal",
        groups=(
            SetGroupSpec(fraction=1.0, weight=1.0, kind="cyclic",
                         ws_min=36, ws_max=44),
        ),
        shuffle_sets=False,
    ),
    "friendly": WorkloadSpec(
        name="phase-quiet",
        groups=(
            SetGroupSpec(fraction=1.0, weight=1.0, kind="zipf",
                         ws_min=8, ws_max=8, zipf_alpha=1.0),
        ),
        shuffle_sets=False,
    ),
}


def snapshot(cache: StemCache, sink: RingBufferSink) -> dict:
    """One phase's row, attributed from the phase's event log."""
    events = sink.events
    counts = event_counts(events)
    lifetimes = coupling_lifetimes(events)
    fanout = spill_fanout(events)
    return {
        "miss_rate": cache.stats.miss_rate,
        "couplings": counts.get("coupling", 0),
        "decouplings": counts.get("decoupling", 0),
        "policy_swaps": counts.get("policy_swap", 0),
        "spills": counts.get("spill", 0),
        "spill_rejects": counts.get("spill_reject", 0),
        "mean_lifetime": (
            sum(lifetimes) / len(lifetimes) if lifetimes else 0.0
        ),
        "takers_spilling": len(fanout),
        "bip_sets": sum(
            1 for s in range(NUM_SETS) if cache.policy_mode_of(s) == "BIP"
        ),
        "coupled_sets": sum(
            1 for s in range(NUM_SETS) if cache.role_of(s) != "uncoupled"
        ),
    }


def main() -> None:
    sink = RingBufferSink()
    cache = StemCache(
        CacheGeometry(num_sets=NUM_SETS, associativity=16),
        tracer=Tracer(sink),
    )
    print(f"STEM on a {NUM_SETS}-set, 16-way LLC across three phases "
          f"of {PHASE_LENGTH:,} accesses (per-phase event-log view)\n")
    header = (f"{'phase':>16s} {'miss':>6s} {'cpl':>5s} {'dcpl':>5s} "
              f"{'swaps':>6s} {'spills':>7s} {'rejects':>8s} "
              f"{'life':>7s} {'BIPsets':>8s} {'paired':>7s}")
    print(header)
    for phase_number, (label, spec) in enumerate(PHASES.items()):
        trace = generate_trace(
            spec, num_sets=NUM_SETS, length=PHASE_LENGTH,
            seed=11 + phase_number,
        )
        cache.reset_stats()
        sink.clear()
        for address in trace.addresses:
            cache.access(address)
        snap = snapshot(cache, sink)
        print(f"{label:>16s} {snap['miss_rate']:6.2f} "
              f"{snap['couplings']:5d} {snap['decouplings']:5d} "
              f"{snap['policy_swaps']:6d} {snap['spills']:7d} "
              f"{snap['spill_rejects']:8d} {snap['mean_lifetime']:7,.0f} "
              f"{snap['bip_sets']:8d} {snap['coupled_sets']:7d}")
    print("\nReading the table: pairs form in the giver/taker phase, are")
    print("torn down once every set turns needy, and the BIP population")
    print("rises during the thrash phase then stops growing in the quiet")
    print("phase — STEM's two adaptation loops working independently.")
    print("'life' is the mean coupling lifetime in accesses, derived from")
    print("pairing each coupling event with its decoupling in the log.")


if __name__ == "__main__":
    main()
